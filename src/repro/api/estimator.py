"""The :class:`Estimator` facade: scikit-style fit/predict over any input.

One object wraps model construction, scheme selection, the in-memory MGD
loop, and the out-of-core engine behind ``fit(data)``:

* ``fit(X, y)`` on arrays trains in memory over compressed mini-batches
  (SciPy sparse input trains directly on the sparse batches through
  :mod:`repro.exec`);
* ``fit(X, y, shard_dir=...)`` shards to disk first and streams through the
  byte-budgeted buffer pool;
* ``fit(dataset)`` on a :class:`~repro.api.dataset.Dataset` (or a shard
  directory path) always takes the out-of-core path — the backend is chosen
  by what the caller hands over, never by a flag.

``save``/``load`` go through the checkpoint
:class:`~repro.serve.checkpoint.ModelRegistry`; the estimator's
hyper-parameters ride along in the format-v2 ``api`` block, so
:meth:`Estimator.load` rebuilds the whole facade object, not just the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.api.dataset import Dataset
from repro.compression.registry import get_scheme
from repro.core.calibration import WORKLOADS, ensure_calibration
from repro.data.minibatch import iter_minibatch_slices
from repro.engine.encode import AUTO_SCHEME, resolve_scheme_name
from repro.engine.shards import ShardedDataset
from repro.engine.trainer import OOCTrainReport, OutOfCoreTrainer
from repro.ml.models import (
    FeedForwardNetwork,
    LinearRegressionModel,
    LinearSVMModel,
    LogisticRegressionModel,
)
from repro.ml.multiclass import OVR_BASE_MODELS, OneVsRestModel
from repro.ml.optimizer import (
    GradientDescentConfig,
    MiniBatchGradientDescent,
    TrainingHistory,
)
from repro.serve.checkpoint import Checkpoint, ModelRegistry

#: Model spec strings accepted by ``Estimator(model=...)``, short and long.
MODEL_ALIASES = {
    "logreg": LogisticRegressionModel,
    "logistic_regression": LogisticRegressionModel,
    "svm": LinearSVMModel,
    "linreg": LinearRegressionModel,
    "linear_regression": LinearRegressionModel,
    "ffnn": FeedForwardNetwork,
    "neural_network": FeedForwardNetwork,
}

#: Prefix for one-vs-rest multi-class specs: ``"ovr:<binary classifier>"``.
OVR_PREFIX = "ovr:"


@dataclass
class FitReport:
    """What one ``fit``/``partial_fit`` call did, whichever backend ran."""

    backend: str  # "in-memory" or "out-of-core"
    history: TrainingHistory
    n_examples: int
    #: Engine-level report when the out-of-core path ran.
    ooc: OOCTrainReport | None = None
    #: The dataset trained over when the out-of-core path ran.
    dataset: Dataset | None = None

    @property
    def final_loss(self) -> float:
        return self.history.final_loss

    @property
    def epochs(self) -> int:
        return len(self.history.epoch_losses)


class Estimator:
    """Train, predict, and checkpoint any :mod:`repro.ml` model — one facade.

    Parameters
    ----------
    model:
        A spec string (``"logreg"``, ``"svm"``, ``"linreg"``, ``"ffnn"`` or
        their long names, or ``"ovr:<base>"`` for one-vs-rest multi-class
        over a binary classifier, e.g. ``"ovr:logreg"`` with ``n_classes``)
        or an already-built model instance.  Spec-built models are
        (re)created on ``fit`` once the feature width is known.
    scheme:
        Compression for training batches and on-disk shards: a registered
        scheme name, ``"auto"`` (default — the advisor picks per batch), or
        ``None`` to train on raw dense batches.
    workload:
        Op mix the ``"auto"`` advisor optimises for when encoding.  Defaults
        to ``"train"`` — fitting is matmat-heavy epochs, so batches are
        compressed with the scheme whose *measured* kernel costs make those
        epochs cheapest (see :mod:`repro.core.calibration`).  ``None``
        restores the ratio-only flat-penalty advisor.
    batch_size / epochs / learning_rate / learning_rate_decay / seed:
        MGD hyper-parameters (the seed also drives shuffling and model init).
    l2:
        L2 penalty; ``None`` keeps each model's own default.
    hidden_sizes / n_classes:
        Feed-forward network shape (ignored by the linear models).
    budget_bytes / budget_ratio / prefetch_depth / workers / executor:
        Out-of-core knobs, passed to the engine when that path runs.
    """

    def __init__(
        self,
        model: str | object = "logreg",
        *,
        scheme: str | None = AUTO_SCHEME,
        workload: str | None = "train",
        batch_size: int = 250,
        epochs: int = 10,
        learning_rate: float = 0.1,
        learning_rate_decay: float = 1.0,
        seed: int | None = 0,
        l2: float | None = None,
        hidden_sizes: tuple[int, ...] = (200, 50),
        n_classes: int = 2,
        budget_bytes: int | None = None,
        budget_ratio: float = 0.5,
        disk_bandwidth_bytes_per_sec: float = 150e6,
        prefetch_depth: int = 2,
        workers: int | None = None,
        executor: str = "auto",
    ):
        self._ovr_base: str | None = None
        if isinstance(model, str):
            if model.startswith(OVR_PREFIX):
                base = model[len(OVR_PREFIX):].strip()
                if base not in OVR_BASE_MODELS:
                    raise ValueError(
                        f"unknown one-vs-rest base {base!r}; "
                        f"known: {sorted(OVR_BASE_MODELS)} (spec: 'ovr:<base>')"
                    )
                self._model_cls = OneVsRestModel
                self._ovr_base = OVR_BASE_MODELS[base].name
            elif model in MODEL_ALIASES:
                self._model_cls = MODEL_ALIASES[model]
            else:
                raise ValueError(
                    f"unknown model {model!r}; known: {sorted(MODEL_ALIASES)} "
                    f"or 'ovr:<base>' for one-vs-rest multi-class"
                )
            self.model = None
            # Spec-built models belong to the estimator: fit() re-initialises
            # them.  Caller-supplied instances are trained in place.
            self._owns_model = True
        else:
            self._model_cls = type(model)
            self.model = model
            self._owns_model = False
            if isinstance(model, OneVsRestModel):
                self._ovr_base = model.base
        if scheme is not None and scheme != AUTO_SCHEME:
            try:
                get_scheme(scheme)
            except KeyError:
                raise ValueError(f"unknown compression scheme {scheme!r}") from None
        if workload is not None and workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; valid workloads: {list(WORKLOADS)}"
            )
        self.scheme = scheme
        self.workload = workload
        self.batch_size = batch_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.learning_rate_decay = learning_rate_decay
        self.seed = seed
        self.l2 = l2
        self.hidden_sizes = tuple(hidden_sizes)
        self.n_classes = n_classes
        self.budget_bytes = budget_bytes
        self.budget_ratio = budget_ratio
        self.disk_bandwidth_bytes_per_sec = disk_bandwidth_bytes_per_sec
        self.prefetch_depth = prefetch_depth
        self.workers = workers
        self.executor = executor
        #: The checkpoint this estimator was loaded from, if any.
        self.checkpoint: Checkpoint | None = None
        self._last_fit: FitReport | None = None
        # Fail fast on bad config, exactly like the trainer would later.
        self._config()

    # -- configuration ---------------------------------------------------------

    def get_params(self) -> dict:
        """Constructor kwargs, JSON-ready (stored in the checkpoint ``api`` block)."""
        if self._model_cls is OneVsRestModel and self._ovr_base:
            model_spec = f"{OVR_PREFIX}{self._ovr_base}"
        else:
            model_spec = getattr(self._model_cls, "name", self._model_cls.__name__)
        return {
            "model": model_spec,
            "scheme": self.scheme,
            "workload": self.workload,
            "batch_size": self.batch_size,
            "epochs": self.epochs,
            "learning_rate": self.learning_rate,
            "learning_rate_decay": self.learning_rate_decay,
            "seed": self.seed,
            "l2": self.l2,
            "hidden_sizes": list(self.hidden_sizes),
            "n_classes": self.n_classes,
            "budget_bytes": self.budget_bytes,
            "budget_ratio": self.budget_ratio,
            "disk_bandwidth_bytes_per_sec": self.disk_bandwidth_bytes_per_sec,
            "prefetch_depth": self.prefetch_depth,
            "workers": self.workers,
            "executor": self.executor,
        }

    def _config(self, epochs: int | None = None) -> GradientDescentConfig:
        return GradientDescentConfig(
            batch_size=self.batch_size,
            epochs=epochs if epochs is not None else self.epochs,
            learning_rate=self.learning_rate,
            learning_rate_decay=self.learning_rate_decay,
            shuffle_seed=self.seed,
        )

    def _build_model(self, n_features: int):
        kwargs: dict = {"seed": self.seed}
        if self.l2 is not None:
            kwargs["l2"] = self.l2
        if self._model_cls is FeedForwardNetwork:
            kwargs["hidden_sizes"] = self.hidden_sizes
            kwargs["n_classes"] = self.n_classes
        elif self._model_cls is OneVsRestModel:
            kwargs["base"] = self._ovr_base or "logistic_regression"
            kwargs["n_classes"] = self.n_classes
        return self._model_cls(n_features, **kwargs)

    def _ensure_model(self, n_features: int, reset: bool):
        """Return the model to train: rebuild spec-built models on ``fit``."""
        if self.model is None or (reset and self._owns_model):
            self.model = self._build_model(n_features)
        elif self.model.n_features != n_features:
            raise ValueError(
                f"model expects {self.model.n_features} features, data has {n_features}"
            )
        return self.model

    # -- fitting ---------------------------------------------------------------

    def fit(self, data, labels=None, *, shard_dir=None, eval_fn=None) -> FitReport:
        """Train from scratch; the input decides the backend.

        ``data`` may be a :class:`Dataset` / shard-directory path (labels
        live in the shards — pass no ``labels``), or a feature matrix
        (ndarray or SciPy sparse) with ``labels``.  Arrays train in memory
        unless ``shard_dir`` is given, which routes them through the
        out-of-core engine (shard, spill, prefetch, stream).
        """
        return self._run(
            data, labels, shard_dir=shard_dir, eval_fn=eval_fn,
            config=self._config(), reset=True,
        )

    def partial_fit(self, data, labels=None, *, epochs: int = 1, eval_fn=None) -> FitReport:
        """Continue training the current model for ``epochs`` more epochs.

        The first call builds the model; later calls keep its parameters —
        this is the online/update path (new day of data, warm restarts).
        """
        return self._run(
            data, labels, shard_dir=None, eval_fn=eval_fn,
            config=self._config(epochs), reset=False,
        )

    def _run(self, data, labels, *, shard_dir, eval_fn, config, reset) -> FitReport:
        dataset = self._as_dataset(data)
        if dataset is not None:
            if labels is not None:
                raise ValueError("labels travel inside a Dataset; pass only the dataset")
            report = self._run_out_of_core(dataset, config, eval_fn, reset)
        elif shard_dir is not None:
            if labels is None:
                raise ValueError("array input needs labels (or pass a Dataset)")
            features = np.asarray(data, dtype=np.float64)
            dataset = Dataset.create(
                shard_dir,
                features,
                np.asarray(labels),
                scheme=self.scheme or "DEN",
                batch_size=config.batch_size,
                seed=config.shuffle_seed,
                workers=self.workers,
                executor=self.executor,
                workload=self.workload if self.scheme == AUTO_SCHEME else None,
            )
            report = self._run_out_of_core(dataset, config, eval_fn, reset)
        else:
            report = self._run_in_memory(data, labels, config, eval_fn, reset)
        self._last_fit = report
        return report

    @staticmethod
    def _as_dataset(data) -> Dataset | None:
        """Coerce dataset-ish inputs; ``None`` means array-like."""
        if isinstance(data, Dataset):
            return data
        if isinstance(data, ShardedDataset):
            return Dataset(data)
        if isinstance(data, (str, Path)):
            if not Dataset.exists(data):
                raise FileNotFoundError(f"no shard manifest under {data}")
            return Dataset.open(data)
        return None

    def _run_out_of_core(self, dataset, config, eval_fn, reset) -> FitReport:
        # The trainer is built in "auto" mode so any shard mix attaches; the
        # estimator's own scheme only governs *encoding*, which has already
        # happened by the time a Dataset exists.
        trainer = OutOfCoreTrainer(
            AUTO_SCHEME,
            config,
            budget_bytes=self.budget_bytes,
            budget_ratio=self.budget_ratio,
            disk_bandwidth_bytes_per_sec=self.disk_bandwidth_bytes_per_sec,
            prefetch_depth=self.prefetch_depth,
            workers=self.workers,
            executor=self.executor,
        )
        trainer.attach(dataset.sharded)
        model = self._ensure_model(dataset.n_cols, reset)
        ooc = trainer.train(model, eval_fn=eval_fn)
        return FitReport(
            backend="out-of-core",
            history=ooc.history,
            n_examples=dataset.n_examples,
            ooc=ooc,
            dataset=dataset,
        )

    def _run_in_memory(self, features, labels, config, eval_fn, reset) -> FitReport:
        if labels is None:
            raise ValueError("array input needs labels (or pass a Dataset)")
        targets = np.asarray(labels)
        if sp.issparse(features):
            matrix = features.tocsr()
            batches = [
                (matrix[idx], targets[idx])
                for idx in iter_minibatch_slices(
                    matrix.shape[0], config.batch_size, seed=config.shuffle_seed
                )
            ]
            n_rows, n_cols = matrix.shape
        else:
            dense = np.asarray(features, dtype=np.float64)
            # The calibration is resolved once for the whole fit (not per
            # batch); it is machine-wide, so later fits reuse the process
            # cache and pay nothing.
            calibration = (
                ensure_calibration()
                if self.scheme == AUTO_SCHEME and self.workload is not None
                else None
            )
            batches = []
            for idx in iter_minibatch_slices(
                dense.shape[0], config.batch_size, seed=config.shuffle_seed
            ):
                batch = dense[idx]
                if self.scheme is not None:
                    # "auto" advises per batch, exactly as shard encoding does.
                    name = resolve_scheme_name(
                        self.scheme, batch,
                        workload=self.workload, calibration=calibration,
                    )
                    batch = get_scheme(name).compress(batch)
                batches.append((batch, targets[idx]))
            n_rows, n_cols = dense.shape
        model = self._ensure_model(n_cols, reset)
        history = MiniBatchGradientDescent(config).train(model, batches, eval_fn=eval_fn)
        return FitReport(backend="in-memory", history=history, n_examples=n_rows)

    # -- prediction ------------------------------------------------------------

    def _require_model(self):
        if self.model is None:
            raise RuntimeError("fit the estimator (or load a checkpoint) first")
        return self.model

    def predict(self, data) -> np.ndarray:
        """Predict for arrays, SciPy sparse matrices, or whole ``Dataset``\\ s.

        Dataset shards are decoded to their compressed form and the model
        runs directly on it — prediction never densifies a shard.
        """
        model = self._require_model()
        dataset = self._as_dataset(data)
        if dataset is not None:
            return np.concatenate([model.predict(m) for m, _ in dataset.batches()])
        return np.asarray(model.predict(data))

    def predict_proba(self, data) -> np.ndarray:
        model = self._require_model()
        if not hasattr(model, "predict_proba"):
            raise AttributeError(f"{type(model).__name__} has no predict_proba")
        dataset = self._as_dataset(data)
        if dataset is not None:
            return np.concatenate([model.predict_proba(m) for m, _ in dataset.batches()])
        return np.asarray(model.predict_proba(data))

    # -- persistence -----------------------------------------------------------

    def save(self, registry_root: Path | str) -> tuple[int, Path]:
        """Publish the fitted model as the next registry version.

        The checkpoint (format v2) carries the estimator's hyper-parameters
        and the last fit's provenance in its ``api`` block, plus the shard
        directory when the out-of-core path trained it — which is what lets
        ``python -m repro serve`` find the features again.
        """
        model = self._require_model()
        registry = ModelRegistry(registry_root)
        dataset_meta: dict = {}
        fit_meta: dict = {}
        scheme_name = self.scheme
        last = self._last_fit
        if last is not None:
            fit_meta = {
                "backend": last.backend,
                "n_examples": last.n_examples,
                "epochs": last.epochs,
                "final_loss": last.final_loss,
            }
            if last.dataset is not None:
                stats = last.dataset.stats()
                scheme_name = stats.scheme
                dataset_meta = {
                    "shard_dir": str(last.dataset.path.resolve()),
                    "n_examples": stats.n_examples,
                    "n_shards": stats.n_shards,
                    "scheme": stats.scheme,
                    "requested_scheme": stats.requested_scheme,
                    "scheme_counts": stats.scheme_counts,
                }
        version = registry.save(
            model,
            scheme_name=scheme_name,
            dataset_meta=dataset_meta,
            api_meta={"estimator": self.get_params(), "fit": fit_meta},
        )
        return version, registry.path_for(version)

    @classmethod
    def load(cls, registry_root: Path | str, version: int | str = "latest") -> "Estimator":
        """Rebuild an estimator (model + facade config) from the registry.

        Format-v2 checkpoints restore the saved hyper-parameters; v1
        checkpoints predate the ``api`` block and load with defaults.  The
        resolved :class:`Checkpoint` stays on ``estimator.checkpoint``.

        The loaded estimator keeps the facade contract: :meth:`partial_fit`
        continues from the checkpointed weights, while :meth:`fit` trains
        from scratch (the model is re-initialised, not warm-started).
        """
        checkpoint = ModelRegistry(registry_root).load(version)
        params = dict(checkpoint.api_meta.get("estimator", {}))
        params.pop("model", None)
        if "hidden_sizes" in params:
            params["hidden_sizes"] = tuple(params["hidden_sizes"])
        if isinstance(checkpoint.model, FeedForwardNetwork):
            # v1 checkpoints carry no api block: recover the network shape
            # from the model itself so a later fit() rebuilds it correctly.
            params.setdefault(
                "hidden_sizes",
                tuple(int(w.shape[1]) for w in checkpoint.model.weights[:-1]),
            )
            params.setdefault("n_classes", checkpoint.model.n_classes)
        estimator = cls(model=checkpoint.model, **params)
        estimator.checkpoint = checkpoint
        # fit() must mean "from scratch" even after load(); only partial_fit
        # continues from the checkpointed parameters.
        estimator._owns_model = True
        return estimator
