"""The :class:`Dataset` handle: one object owning a shard directory's lifecycle.

``repro.engine`` knows how to encode, persist, and stream compressed shards;
this module wraps that machinery in a single handle covering the whole
dataset lifecycle the paper's workloads need:

* :meth:`Dataset.create` — shuffle-once split + parallel encode (the
  Section 5.1 advisor picks per shard with ``scheme="auto"``);
* :meth:`Dataset.open` — attach to an existing directory (manifest v1 or v2);
* :meth:`Dataset.append` — grow a live dataset with new batches;
* :meth:`Dataset.stats` — sizes, compression ratio, and the per-shard
  scheme mix (what benchmark provenance and the ``stats`` CLI print);
* :meth:`Dataset.compact` — re-advise every shard and re-encode only the
  drifted ones, atomically rewriting the v2 manifest;
* :meth:`Dataset.scan` — predicate push-down selections and aggregations
  answered on the compressed shards (:mod:`repro.exec.scan`);
* :meth:`Dataset.take` / ``dataset[rows]`` — ad-hoc row reads through the
  per-scheme ``row_slice`` kernel;
* :meth:`Dataset.fsck` — sweep leftovers of interrupted compactions.

Everything downstream (training, serving, benchmarks) takes a ``Dataset``;
the underlying :class:`~repro.engine.shards.ShardedDataset` stays reachable
through :attr:`Dataset.sharded` for advanced use.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.calibration import WORKLOADS, Calibration, ensure_calibration
from repro.data.minibatch import split_minibatches
from repro.engine.compact import CompactReport, FsckReport, compact_dataset, fsck_dataset
from repro.engine.encode import AUTO_SAMPLE_ROWS, AUTO_SCHEME
from repro.engine.shards import MANIFEST_NAME, ShardedDataset, ShardInfo
from repro.exec import row_slice
from repro.exec.scan import ScanResult, scan_shards
from repro.storage.buffer_pool import BufferPool

#: Default mini-batch row count (matches the training default).
DEFAULT_BATCH_SIZE = 250


def _calibration_for(path: Path | str, workload: str | None) -> Calibration | None:
    """The calibration backing workload-aware advice, or ``None`` without one.

    Resolved next to the dataset directory so the timing pass runs at most
    once per machine and the measurements persist as ``calibration.json``
    for every later open/compact of the same data.
    """
    if workload is None:
        return None
    if workload not in WORKLOADS:
        # Fail before the timing pass, not after it.
        raise ValueError(
            f"unknown workload {workload!r}; valid workloads: {list(WORKLOADS)}"
        )
    return ensure_calibration(path)


@dataclass(frozen=True)
class DatasetStats:
    """A point-in-time summary of one shard directory."""

    path: str
    n_shards: int
    n_examples: int
    n_cols: int
    scheme: str
    requested_scheme: str | list[str] | None
    scheme_counts: dict[str, int] = field(default_factory=dict)
    payload_bytes: int = 0
    physical_bytes: int = 0
    dense_bytes: int = 0
    encode_seconds: float = 0.0
    #: Process-global obs metrics snapshot; only populated by
    #: ``Dataset.stats(metrics=True)``.
    metrics: dict | None = None

    @property
    def compression_ratio(self) -> float:
        """Dense footprint over compressed payload (higher is better)."""
        return self.dense_bytes / max(self.payload_bytes, 1)

    @property
    def is_mixed(self) -> bool:
        return len(self.scheme_counts) > 1

    def as_dict(self) -> dict:
        """JSON-ready form (benchmark records, CLI ``--json`` style output)."""
        data = {**asdict(self), "compression_ratio": self.compression_ratio}
        if data.get("metrics") is None:
            data.pop("metrics", None)
        return data


class Dataset:
    """A compressed, sharded dataset on disk — the facade's data handle."""

    def __init__(self, sharded: ShardedDataset):
        self._sharded = sharded

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Path | str,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        scheme: str | Sequence[str] = AUTO_SCHEME,
        batch_size: int = DEFAULT_BATCH_SIZE,
        shuffle: bool = True,
        seed: int | None = 0,
        workers: int | None = None,
        executor: str = "auto",
        workload: str | None = None,
    ) -> "Dataset":
        """Shuffle once, split into mini-batches, and encode them to ``path``.

        ``scheme`` is any registered scheme name, ``"auto"`` (default) for
        per-shard advisor selection, or a sequence naming one scheme per
        batch.  The directory is created if needed.

        ``workload`` (``"train"``, ``"serve"``, ``"scan"``) switches
        ``"auto"`` selection to the measured cost model: the kernel
        calibration is resolved once (computed on first use, persisted as
        ``calibration.json`` next to the manifest) and each shard gets the
        scheme whose measured op mix is cheapest for that workload.
        """
        batches = split_minibatches(
            features, labels, batch_size=batch_size, shuffle=shuffle, seed=seed
        )
        sharded = ShardedDataset.create(
            path, batches, scheme, workers=workers, executor=executor,
            workload=workload, calibration=_calibration_for(path, workload),
        )
        return cls(sharded)

    @classmethod
    def from_batches(
        cls,
        path: Path | str,
        batches: list[tuple[np.ndarray, np.ndarray]],
        *,
        scheme: str | Sequence[str] = AUTO_SCHEME,
        workers: int | None = None,
        executor: str = "auto",
        workload: str | None = None,
    ) -> "Dataset":
        """Encode pre-split ``(features, labels)`` batches to ``path``."""
        sharded = ShardedDataset.create(
            path, batches, scheme, workers=workers, executor=executor,
            workload=workload, calibration=_calibration_for(path, workload),
        )
        return cls(sharded)

    @classmethod
    def open(cls, path: Path | str) -> "Dataset":
        """Attach to an existing shard directory (manifest v1 or v2)."""
        return cls(ShardedDataset.open(path))

    @staticmethod
    def exists(path: Path | str) -> bool:
        """Whether ``path`` holds a shard manifest this class can open."""
        return (Path(path) / MANIFEST_NAME).exists()

    # -- growth ----------------------------------------------------------------

    def append(
        self,
        batches,
        labels: np.ndarray | None = None,
        *,
        scheme: str | Sequence[str] | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        executor: str = "auto",
        workload: str | None = None,
    ) -> list[ShardInfo]:
        """Append data as new shards (manifest and labels rewritten atomically).

        Accepts either a list of ``(features, labels)`` mini-batch tuples, or
        a ``(features, labels)`` array pair that is split in row order with
        ``batch_size`` (default: the dataset's widest existing shard).  The
        scheme defaults to the dataset's original request, so an ``"auto"``
        dataset keeps advising per shard as it grows; ``workload`` makes that
        advice use the measured cost model (see :meth:`create`).
        """
        if labels is not None:
            size = batch_size or max(
                (s.n_rows for s in self._sharded.shards), default=DEFAULT_BATCH_SIZE
            )
            batches = split_minibatches(batches, labels, batch_size=size, shuffle=False)
        return self._sharded.append(
            list(batches), scheme, workers=workers, executor=executor,
            workload=workload, calibration=_calibration_for(self.path, workload),
        )

    # -- maintenance -----------------------------------------------------------

    def compact(
        self,
        readvise: bool = True,
        *,
        sample_rows: int = AUTO_SAMPLE_ROWS,
        workload: str | None = None,
        max_shards: int | None = None,
        workers: int | None = None,
        executor: str = "auto",
    ) -> CompactReport:
        """Re-advise every shard; re-encode only those whose winner changed.

        This is the drift repair pass: shards advised long ago (or encoded
        with a fixed scheme) are re-sampled through the Section 5.1 advisor,
        and only the shards whose winning scheme differs from the manifest's
        are re-encoded.  The v2 manifest is rewritten atomically; a second
        compact right after a first is a no-op (``report.changed`` is
        ``False``).  With ``readvise=False`` only the manifest is rewritten
        (normalising a v1 directory to format v2).

        ``workload`` re-advises with the measured cost model: the kernel
        calibration (``calibration.json`` next to the manifest; computed on
        first use) scores each scheme by the ops that workload actually runs,
        so the *same* data compacts differently for a training replica
        (``workload="train"``) than for a serving one (``workload="serve"``)
        — and re-running ``compact`` with a workload retroactively upgrades
        datasets encoded under the old flat-penalty advisor.

        Re-encoding fans out over the encode executor (``workers`` /
        ``executor`` as in :meth:`create`); ``max_shards`` bounds how many
        shards one pass may rewrite, deferring the rest to later passes
        (``report.deferred`` counts them).
        """
        return compact_dataset(
            self._sharded,
            readvise=readvise,
            sample_rows=sample_rows,
            workload=workload,
            calibration=_calibration_for(self.path, workload),
            max_shards=max_shards,
            workers=workers,
            executor=executor,
        )

    def fsck(self, *, remove: bool = True) -> FsckReport:
        """Sweep leftovers of interrupted compactions (and report corruption).

        A crash between shard staging and the manifest swap leaves staged
        ``shard-*.gN.bin`` generations and dot-prefixed temporaries nothing
        references; fsck deletes exactly those (``remove=False`` only
        reports them) and lists — without touching — any manifest-referenced
        shard file that is missing on disk.
        """
        return fsck_dataset(self._sharded, remove=remove)

    # -- queries ---------------------------------------------------------------

    def scan(
        self,
        *,
        columns: Sequence[int] | None = None,
        where=None,
        agg=None,
        limit: int | None = None,
        pushdown: bool = True,
        budget_bytes: int | None = None,
    ) -> ScanResult:
        """Select rows or compute aggregates, pushed down into the shards.

        ``where`` is a :class:`~repro.exec.predicates.Predicate` or its
        textual form (``"c0 >= 0.5 and c2 == 1"``); ``agg`` is one or more
        aggregate specs (``"count"``, ``"sum:c3"``, ``["min:c0", "max:c0"]``)
        and is exclusive with ``columns``.  Value-indexed shards (CVI/DVI)
        answer comparisons by probing their value dictionaries and
        aggregates from code frequencies; TOC shards extract only the
        touched columns with the compressed right multiplication; every
        other scheme decodes once and masks densely — results are identical
        either way (``pushdown=False`` forces the dense path, which is what
        the benchmark gate compares against).

        Shards stream through a byte-budgeted
        :class:`~repro.storage.buffer_pool.BufferPool` (``budget_bytes``
        defaults to the full payload) and a selection with ``limit`` stops
        reading as soon as enough rows matched (``limit`` must be at least
        1 — pass ``None`` for no limit).
        """
        sharded = self._sharded
        pool = BufferPool(
            budget_bytes=budget_bytes or max(1, sharded.total_payload_bytes())
        )
        sharded.attach(pool)

        def stream():
            offset = 0
            for shard in sharded.shards:
                yield sharded.decode(shard.batch_id, pool.read(shard.batch_id)), offset
                offset += shard.n_rows

        return scan_shards(
            stream(),
            columns=columns,
            where=where,
            agg=agg,
            limit=limit,
            pushdown=pushdown,
        )

    def take(self, rows) -> np.ndarray:
        """Ad-hoc row reads: dense copies of the requested global rows.

        Row ids address the *stored* order — the same ids ``predict_id``
        and the feature store use — which differs from the input order when
        the dataset was created with ``shuffle=True``.

        Accepts any iterable of global row ids (duplicates allowed, request
        order preserved).  Each touched shard is decoded once and sliced
        with the per-scheme :func:`repro.exec.row_slice` kernel — notebooks
        no longer need to reach into ``FeatureStore`` internals for a quick
        look at the data.
        """
        ids = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows)
        ids = ids.astype(np.intp).ravel()
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_examples):
            raise IndexError(f"row id out of range [0, {self.n_examples})")
        out = np.empty((ids.size, self.n_cols), dtype=np.float64)
        if not ids.size:
            return out
        # Group positions by shard so each compressed payload is decoded once.
        offsets = np.cumsum([0] + [s.n_rows for s in self._sharded.shards])
        shard_of = np.searchsorted(offsets, ids, side="right") - 1
        for shard_index in np.unique(shard_of):
            positions = np.flatnonzero(shard_of == shard_index)
            shard = self._sharded.shards[int(shard_index)]
            local = ids[positions] - offsets[shard_index]
            matrix = self._sharded.decode(shard.batch_id)
            out[positions] = row_slice(matrix, local)
        return out

    def __getitem__(self, key) -> np.ndarray:
        """Sugar over :meth:`take`: ``dataset[7]``, ``dataset[10:20]``,
        ``dataset[[3, 1, 4]]``."""
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self.n_examples
            return self.take([index])[0]
        if isinstance(key, slice):
            return self.take(range(*key.indices(self.n_examples)))
        return self.take(key)

    # -- inspection ------------------------------------------------------------

    def stats(self, *, metrics: bool = False) -> DatasetStats:
        """Sizes, compression ratio, and the per-shard scheme mix.

        With ``metrics=True`` the result also carries the process-global
        observability snapshot (``repro.obs.metrics_snapshot()``) — encode,
        train, scan, compaction, and buffer-pool counters accumulated so far
        in this process, not scoped to this dataset alone.
        """
        from repro.obs import metrics_snapshot

        sharded = self._sharded
        n_cols = sharded.shards[0].n_cols if sharded.shards else 0
        return DatasetStats(
            path=str(sharded.directory),
            n_shards=len(sharded),
            n_examples=sharded.n_examples,
            n_cols=n_cols,
            scheme=sharded.scheme_name,
            requested_scheme=sharded.requested_scheme,
            scheme_counts=sharded.scheme_counts(),
            payload_bytes=sharded.total_payload_bytes(),
            physical_bytes=sharded.physical_bytes(),
            dense_bytes=sharded.n_examples * n_cols * 8,
            encode_seconds=sharded.encode_seconds,
            metrics=metrics_snapshot() if metrics else None,
        )

    @property
    def path(self) -> Path:
        return self._sharded.directory

    @property
    def sharded(self) -> ShardedDataset:
        """The underlying engine-level store (advanced use)."""
        return self._sharded

    @property
    def n_examples(self) -> int:
        return self._sharded.n_examples

    @property
    def n_cols(self) -> int:
        return self._sharded.shards[0].n_cols if self._sharded.shards else 0

    @property
    def scheme(self) -> str:
        """The uniform scheme name, or ``"mixed"`` when shards differ."""
        return self._sharded.scheme_name

    def scheme_counts(self) -> dict[str, int]:
        return self._sharded.scheme_counts()

    def __len__(self) -> int:
        return len(self._sharded)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (
            f"Dataset({str(self.path)!r}, shards={len(self)}, "
            f"examples={self.n_examples}, scheme={self.scheme!r})"
        )

    # -- iteration -------------------------------------------------------------

    def batches(self) -> Iterator[tuple[object, np.ndarray]]:
        """Yield ``(compressed_matrix, labels)`` per shard, in batch order.

        The matrices are :class:`~repro.compression.base.CompressedMatrix`
        instances — every model and kernel in the stack runs on them directly
        through :mod:`repro.exec`, so iteration never densifies a shard.
        """
        for shard in self._sharded.shards:
            yield (
                self._sharded.decode(shard.batch_id),
                self._sharded.labels_for(shard.batch_id),
            )

    def labels(self) -> np.ndarray:
        """All labels concatenated in batch order."""
        return np.concatenate(
            [self._sharded.labels_for(s.batch_id) for s in self._sharded.shards]
        )
