"""repro.api — the unified public facade over the whole stack.

Four ideas cover everything a user does with the library:

* :class:`Dataset` — a compressed shard directory's full lifecycle:
  ``create`` (parallel encode, per-shard advisor with ``scheme="auto"``),
  ``open``, ``append``, ``stats`` (per-shard scheme mix), ``compact``
  (re-advise on drift, re-encode only the shards whose winner changed),
  ``scan`` (predicate / aggregate queries pushed down onto the compressed
  shards), ``take`` / ``__getitem__`` (random row access), and ``fsck``
  (sweep leftovers of interrupted rewrites);
* :class:`Estimator` — scikit-style ``fit``/``partial_fit``/``predict``
  over ndarray, SciPy sparse, or :class:`Dataset` input, routing in-memory
  vs out-of-core automatically, with ``save``/``load`` through the
  versioned checkpoint registry;
* :func:`open_service` — turn a checkpoint registry into a live
  micro-batched :class:`~repro.serve.service.PredictionService`, or with
  ``workers=N`` into a multi-process
  :class:`~repro.cluster.server.ClusterService`; the asyncio face is
  :class:`~repro.cluster.asyncio_service.AsyncPredictionService`;
* the building blocks themselves (schemes, advisor, dataset profiles,
  metrics) re-exported so scripts and examples need exactly one import.

Observability rides along: :func:`span` / :func:`metrics_snapshot` expose
the live tracing/metrics substrate (:mod:`repro.obs`) the hot paths feed,
and :class:`BenchRegistry` / :func:`bench_report` the persistent bench-run
history behind ``repro bench-report``.

Every future surface (CLI subcommands, async serving, new backends) binds
to this package; ``repro.engine`` / ``repro.serve`` / ``repro.storage``
remain importable for advanced use but are not needed day to day.
"""

from repro import __version__
from repro.api.dataset import Dataset, DatasetStats
from repro.api.estimator import MODEL_ALIASES, Estimator, FitReport
from repro.api.service import open_service
from repro.cluster import (
    AsyncPredictionService,
    ClusterError,
    ClusterService,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.compression import available_schemes, get_scheme
from repro.core import TOCMatrix
from repro.core.advisor import recommend_scheme
from repro.core.calibration import (
    WORKLOADS,
    Calibration,
    calibrate,
    ensure_calibration,
)
from repro.data import DATASET_PROFILES, generate_dataset
from repro.engine.compact import CompactReport, FsckReport, ShardChange
from repro.exec import (
    Aggregate,
    Compare,
    Predicate,
    ScanResult,
    parse_aggregates,
    parse_predicate,
)
from repro.ml.metrics import accuracy, error_rate
from repro.obs import BenchRegistry, bench_report, metrics_snapshot, span
from repro.serve.checkpoint import Checkpoint, ModelRegistry
from repro.serve.service import PredictionService

__all__ = [
    "Aggregate",
    "AsyncPredictionService",
    "BenchRegistry",
    "Calibration",
    "Checkpoint",
    "ClusterError",
    "ClusterService",
    "CompactReport",
    "Compare",
    "DATASET_PROFILES",
    "Dataset",
    "DatasetStats",
    "DeadlineExceeded",
    "Estimator",
    "FitReport",
    "FsckReport",
    "MODEL_ALIASES",
    "ModelRegistry",
    "Predicate",
    "PredictionService",
    "ServiceClosed",
    "ServiceOverloaded",
    "WorkerCrashed",
    "ScanResult",
    "ShardChange",
    "TOCMatrix",
    "WORKLOADS",
    "__version__",
    "accuracy",
    "available_schemes",
    "bench_report",
    "calibrate",
    "ensure_calibration",
    "error_rate",
    "generate_dataset",
    "get_scheme",
    "metrics_snapshot",
    "open_service",
    "parse_aggregates",
    "parse_predicate",
    "recommend_scheme",
    "span",
]
