"""Byte-width bit packing of non-negative integer arrays.

The paper's physical encoding (Section 3.2) stores arrays of small
non-negative integers using ``ceil((floor(log2(max)) + 1) / 8)`` bytes per
integer, plus a small header recording the count and the byte width.  This
module implements exactly that scheme with NumPy, including the uint24 case
(three bytes per integer) that most languages do not support natively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_HEADER_DTYPE = np.dtype("<u4")
_SUPPORTED_WIDTHS = (1, 2, 3, 4)


def bytes_per_integer(max_value: int) -> int:
    """Return the number of bytes needed to store ``max_value``.

    Follows the paper's formula ``ceil((log2(max) + 1) / 8)`` with the
    convention that an all-zero (or empty) array still uses one byte per
    integer so the representation stays self-describing.
    """
    if max_value < 0:
        raise ValueError(f"bit packing requires non-negative integers, got {max_value}")
    if max_value == 0:
        return 1
    bits = int(max_value).bit_length()
    width = (bits + 7) // 8
    if width > 4:
        raise ValueError(
            f"value {max_value} needs {width} bytes; only widths up to 4 are supported"
        )
    return width


@dataclass(frozen=True)
class PackedIntArray:
    """A packed array of non-negative integers.

    Attributes
    ----------
    data:
        Raw little-endian payload bytes (``count * width`` bytes).  Any
        buffer object works — ``from_bytes`` on a memoryview keeps the
        payload as a zero-copy slice of the caller's buffer.
    count:
        Number of integers stored.
    width:
        Bytes used per integer (1, 2, 3, or 4).
    """

    data: bytes | memoryview
    count: int
    width: int

    @property
    def nbytes(self) -> int:
        """Total size in bytes including the 8-byte header."""
        return len(self.data) + 2 * _HEADER_DTYPE.itemsize

    def to_bytes(self) -> bytes:
        """Serialise to a self-describing byte string (header + payload)."""
        header = np.array([self.count, self.width], dtype=_HEADER_DTYPE).tobytes()
        return header + bytes(self.data)

    @classmethod
    def from_bytes(cls, raw) -> tuple["PackedIntArray", int]:
        """Parse a packed array from ``raw``; return it and the bytes consumed."""
        header_size = 2 * _HEADER_DTYPE.itemsize
        if len(raw) < header_size:
            raise ValueError("truncated packed-integer header")
        count, width = np.frombuffer(raw[:header_size], dtype=_HEADER_DTYPE)
        count = int(count)
        width = int(width)
        if width not in _SUPPORTED_WIDTHS:
            raise ValueError(f"unsupported packed-integer width {width}")
        payload_size = count * width
        end = header_size + payload_size
        if len(raw) < end:
            raise ValueError("truncated packed-integer payload")
        return cls(data=raw[header_size:end], count=count, width=width), end

    def unpack(self) -> np.ndarray:
        """Decode back to a ``numpy.ndarray`` of dtype ``int64``."""
        return unpack_integers(self)


def pack_integers(values: np.ndarray | list[int]) -> PackedIntArray:
    """Pack non-negative integers into the smallest supported byte width."""
    arr = np.asarray(values, dtype=np.int64).ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("bit packing requires non-negative integers")
    max_value = int(arr.max()) if arr.size else 0
    width = bytes_per_integer(max_value)
    if width == 3:
        # Pack as uint32 then drop every fourth (most significant) byte.
        as32 = arr.astype("<u4").view(np.uint8).reshape(-1, 4)
        payload = np.ascontiguousarray(as32[:, :3]).tobytes()
    else:
        dtype = {1: "<u1", 2: "<u2", 4: "<u4"}[width]
        payload = arr.astype(dtype).tobytes()
    return PackedIntArray(data=payload, count=int(arr.size), width=width)


def unpack_integers(packed: PackedIntArray) -> np.ndarray:
    """Inverse of :func:`pack_integers`."""
    if packed.count == 0:
        return np.zeros(0, dtype=np.int64)
    if packed.width == 3:
        # Re-expand three-byte integers into uint32 with a zero leading byte,
        # mirroring the "copy into uint32 and mask" trick from the paper.
        tri = np.frombuffer(packed.data, dtype=np.uint8).reshape(packed.count, 3)
        quad = np.zeros((packed.count, 4), dtype=np.uint8)
        quad[:, :3] = tri
        return quad.view("<u4").ravel().astype(np.int64)
    dtype = {1: "<u1", 2: "<u2", 4: "<u4"}[packed.width]
    return np.frombuffer(packed.data, dtype=dtype).astype(np.int64)
