"""Variable-length integer (varint) codec.

The paper mentions Varint as a more advanced alternative to fixed-width bit
packing ("future work", Section 3.2).  We provide it as an optional physical
codec so the ablation benches can compare the two.
"""

from __future__ import annotations

import numpy as np


def encode_varints(values: np.ndarray | list[int]) -> bytes:
    """Encode non-negative integers as LEB128-style varints."""
    arr = np.asarray(values, dtype=np.int64).ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("varint encoding requires non-negative integers")
    out = bytearray()
    for value in arr.tolist():
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_varints(raw: bytes, count: int | None = None) -> np.ndarray:
    """Decode varints from ``raw``.

    Parameters
    ----------
    raw:
        Byte string produced by :func:`encode_varints`.
    count:
        If given, stop after decoding this many integers and ignore the rest;
        otherwise decode the whole buffer.
    """
    values: list[int] = []
    current = 0
    shift = 0
    for byte in raw:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(current)
            current = 0
            shift = 0
            if count is not None and len(values) == count:
                break
    if shift != 0:
        raise ValueError("truncated varint stream")
    if count is not None and len(values) < count:
        raise ValueError(f"expected {count} varints, decoded only {len(values)}")
    return np.asarray(values, dtype=np.int64)
