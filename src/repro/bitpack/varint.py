"""Variable-length integer (varint) codec.

The paper mentions Varint as a more advanced alternative to fixed-width bit
packing ("future work", Section 3.2).  We provide it as an optional physical
codec so the ablation benches can compare the two.

The byte-level work is done by the active :mod:`repro.kernels` backend
(vectorized NumPy by default, ``REPRO_KERNELS=python|numba`` to override);
this module keeps the stable public codec API.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

#: Longest accepted varint: 9 payload bytes cover non-negative int64.
MAX_VARINT_BYTES = kernels.MAX_VARINT_BYTES


def encode_varints(values: np.ndarray | list[int]) -> bytes:
    """Encode non-negative integers as LEB128-style varints."""
    return kernels.varint_encode(np.asarray(values, dtype=np.int64))


def decode_varints(raw, count: int | None = None) -> np.ndarray:
    """Decode varints from ``raw`` (bytes or any buffer object).

    Parameters
    ----------
    raw:
        Byte string (or buffer) produced by :func:`encode_varints`.
    count:
        If given, return only the first ``count`` integers; otherwise decode
        the whole buffer.

    The whole buffer must consist of complete varints even when ``count``
    stops short of them: a stream that ends mid-value raises ``ValueError``
    regardless of ``count``, because a truncated tail means the writer was
    interrupted and the payload cannot be trusted.
    """
    values, _ = kernels.varint_decode(raw, count, True)
    return values


__all__ = ["MAX_VARINT_BYTES", "decode_varints", "encode_varints"]
