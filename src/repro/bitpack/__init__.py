"""Physical-encoding substrate: byte-width bit packing, value indexing, varint.

These are the low-level codecs used by TOC's physical encoding layer
(Section 3.2 of the paper) and by the DVI/CVI comparison schemes.
"""

from repro.bitpack.bitpacking import (
    PackedIntArray,
    bytes_per_integer,
    pack_integers,
    unpack_integers,
)
from repro.bitpack.value_index import ValueIndex, build_value_index
from repro.bitpack.varint import decode_varints, encode_varints

__all__ = [
    "PackedIntArray",
    "ValueIndex",
    "build_value_index",
    "bytes_per_integer",
    "pack_integers",
    "unpack_integers",
    "encode_varints",
    "decode_varints",
]
