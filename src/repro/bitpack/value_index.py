"""Value indexing (dictionary encoding) for floating-point values.

The paper's physical encoding replaces every distinct value in the
column-index:value pairs by an index into an array of unique values
(Section 3.2), and CVI/DVI use the same trick on CSR/DEN matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.bitpack.bitpacking import PackedIntArray, pack_integers


@dataclass(frozen=True)
class ValueIndex:
    """A dictionary-encoded array of floats.

    Attributes
    ----------
    dictionary:
        The unique values, in first-appearance order.
    codes:
        For each original element, the index of its value in ``dictionary``.
    """

    dictionary: np.ndarray
    codes: np.ndarray

    def __post_init__(self) -> None:
        if self.codes.size and (self.codes.max() >= self.dictionary.size or self.codes.min() < 0):
            raise ValueError("value-index codes out of dictionary range")

    @property
    def nbytes(self) -> int:
        """Physical size: exactly the length of the serialised form."""
        return len(self.to_bytes())

    def decode(self) -> np.ndarray:
        """Materialise the original value array (batched kernel gather)."""
        if self.codes.size == 0:
            return np.zeros(0, dtype=np.float64)
        return kernels.vi_gather(self.dictionary, self.codes)

    def to_bytes(self) -> bytes:
        """Serialise as packed codes followed by the raw dictionary."""
        packed_codes = pack_integers(self.codes)
        dict_header = pack_integers(np.array([self.dictionary.size], dtype=np.int64))
        return packed_codes.to_bytes() + dict_header.to_bytes() + self.dictionary.astype("<f8").tobytes()

    @classmethod
    def from_bytes(cls, raw) -> tuple["ValueIndex", int]:
        """Parse a :class:`ValueIndex`; return it and the bytes consumed."""
        packed_codes, offset = PackedIntArray.from_bytes(raw)
        dict_header, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        dict_size = int(dict_header.unpack()[0])
        end = offset + dict_size * 8
        if len(raw) < end:
            raise ValueError("truncated value-index dictionary")
        dictionary = np.frombuffer(raw[offset:end], dtype="<f8").copy()
        codes = packed_codes.unpack()
        return cls(dictionary=dictionary, codes=codes), end


def build_value_index(values: np.ndarray | list[float]) -> ValueIndex:
    """Dictionary-encode ``values`` preserving first-appearance order."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return ValueIndex(dictionary=np.zeros(0, dtype=np.float64), codes=np.zeros(0, dtype=np.int64))
    # np.unique sorts; recover first-appearance order so encodings are stable
    # with respect to the input stream (useful for deterministic tests).
    uniques, first_pos, inverse = np.unique(arr, return_index=True, return_inverse=True)
    order = np.argsort(first_pos, kind="stable")
    dictionary = uniques[order]
    remap = np.empty_like(order)
    remap[order] = np.arange(order.size)
    codes = remap[inverse]
    return ValueIndex(dictionary=dictionary, codes=codes.astype(np.int64))
