"""A byte-budgeted buffer pool with simulated disk latency.

The paper's headline end-to-end results (Tables 6 and 7, Figures 9–11) are
driven by a single mechanism: with a 15 GB machine, only the well-compressed
formats keep every mini-batch in memory; the rest spill and pay disk IO on
every epoch.  The buffer pool makes that mechanism explicit and measurable:

* it holds at most ``budget_bytes`` of compressed batches;
* a hit returns the cached bytes instantly;
* a miss "reads from disk", which costs ``len(bytes) / disk_bandwidth``
  simulated seconds (never a real sleep — simulated time is accounted
  separately so the tests stay fast and deterministic).

Eviction is LRU, which against MGD's cyclic access pattern produces the
worst-case behaviour the paper describes: once the working set exceeds the
budget, effectively every access misses.

Entries come in two flavours.  A plain ``bytes`` payload models a blob whose
"disk" is simulated (the original behaviour, used by the simulation benches).
A :class:`DiskBlob` is a handle to a payload that truly lives on disk — the
out-of-core engine registers one per shard file — and is only loaded into
memory when admitted to the cache, so the pool's byte budget genuinely bounds
resident memory.

Each pool keeps its own :class:`BufferPoolStats` *and* mirrors the traffic
into process-global ``storage.pool.*`` metrics (hits, misses, evictions,
bytes read, and a ``bytes_resident`` gauge), so ``repro.obs`` snapshots see
pool behaviour without holding a pool reference.  An internal re-entrant
lock makes ``read``/``put_on_disk`` safe under concurrent callers (the
trainer's prefetch thread and the feature store race through here).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics


#: What loaders and reads hand back: plain bytes, or a zero-copy
#: ``memoryview`` over an mmap'd shard file (see :mod:`repro.storage.mmapio`).
Payload = bytes | memoryview


@dataclass(frozen=True)
class DiskBlob:
    """Handle to a payload that lives on real disk and is loaded on demand."""

    size: int
    loader: Callable[[], Payload]

    def __len__(self) -> int:
        return self.size


@dataclass
class BufferPoolStats:
    """Counters accumulated by a :class:`BufferPool`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_read_from_disk: int = 0
    simulated_io_seconds: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class BufferPool:
    """LRU buffer pool over serialised mini-batches.

    Parameters
    ----------
    budget_bytes:
        Memory available for cached batches ("RAM size" in the experiments).
    disk_bandwidth_bytes_per_sec:
        Simulated sequential-read bandwidth used to convert missed bytes into
        simulated IO seconds (default 150 MB/s, a typical cloud disk).
    """

    budget_bytes: int
    disk_bandwidth_bytes_per_sec: float = 150e6
    stats: BufferPoolStats = field(default_factory=BufferPoolStats)

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        if self.disk_bandwidth_bytes_per_sec <= 0:
            raise ValueError("disk_bandwidth_bytes_per_sec must be positive")
        self._store: dict[int, bytes | DiskBlob] = {}
        self._cache: OrderedDict[int, int] = OrderedDict()  # key -> size
        self._resident: dict[int, Payload] = {}  # cached payloads of DiskBlob entries
        self._cached_bytes = 0
        # Re-entrant: loaders registered via put_on_disk may themselves be
        # pool-adjacent; RLock keeps an accidental nested read from deadlocking.
        self._lock = threading.RLock()
        self._m_hits = obs_metrics.counter("storage.pool.hits")
        self._m_misses = obs_metrics.counter("storage.pool.misses")
        self._m_evictions = obs_metrics.counter("storage.pool.evictions")
        self._m_disk_bytes = obs_metrics.counter("storage.pool.bytes_read_from_disk")
        self._m_resident = obs_metrics.gauge("storage.pool.bytes_resident")

    # -- population -----------------------------------------------------------

    def put_on_disk(
        self,
        key: int,
        payload: bytes | None = None,
        *,
        size: int | None = None,
        loader: Callable[[], Payload] | None = None,
    ) -> None:
        """Register a batch as residing on disk (not yet cached).

        Either pass ``payload`` (simulated disk: the bytes are kept around and
        misses only charge simulated IO), or ``size`` + ``loader`` for a blob
        that truly lives on disk and is read through ``loader`` on a miss.
        """
        if payload is not None:
            if size is not None or loader is not None:
                raise ValueError("pass either payload or size+loader, not both")
            entry: bytes | DiskBlob = payload
        else:
            if size is None or loader is None:
                raise ValueError("lazy entries need both size and loader")
            if size < 0:
                raise ValueError("size must be non-negative")
            entry = DiskBlob(size=int(size), loader=loader)
        with self._lock:
            # Re-registration replaces the payload, so any cached copy is stale.
            if key in self._cache:
                dropped = self._cache.pop(key)
                self._cached_bytes -= dropped
                self._m_resident.dec(dropped)
                self._resident.pop(key, None)
            self._store[key] = entry

    def __contains__(self, key: int) -> bool:
        return key in self._store

    @property
    def cached_bytes(self) -> int:
        return self._cached_bytes

    @property
    def resident_keys(self) -> list[int]:
        """Keys currently cached in memory (LRU order, oldest first)."""
        with self._lock:
            return list(self._cache)

    # -- access ---------------------------------------------------------------

    def read(self, key: int) -> Payload:
        """Read a batch, going through the cache and charging IO on a miss.

        Lazy (``DiskBlob``) entries return whatever their loader produced —
        a zero-copy memoryview for mmap loaders; caching one pins the
        mapping, so the pool budget still bounds resident bytes.
        """
        with self._lock:
            if key not in self._store:
                raise KeyError(f"batch {key} was never stored")
            entry = self._store[key]
            if key in self._cache:
                self.stats.hits += 1
                self._m_hits.inc()
                self._cache.move_to_end(key)
                return self._resident[key] if isinstance(entry, DiskBlob) else entry
            # Miss: charge simulated disk IO, then admit to the cache.
            payload = entry.loader() if isinstance(entry, DiskBlob) else entry
            self.stats.misses += 1
            self.stats.bytes_read_from_disk += len(payload)
            self.stats.simulated_io_seconds += len(payload) / self.disk_bandwidth_bytes_per_sec
            self._m_misses.inc()
            self._m_disk_bytes.inc(len(payload))
            self._admit(key, payload, keep_resident=isinstance(entry, DiskBlob))
            return payload

    def _admit(self, key: int, payload: Payload, keep_resident: bool) -> None:
        size = len(payload)
        if size > self.budget_bytes:
            # The batch alone exceeds the budget; it can never be cached.
            return
        while self._cached_bytes + size > self.budget_bytes:
            evicted_key, evicted_size = self._cache.popitem(last=False)
            self._cached_bytes -= evicted_size
            self._resident.pop(evicted_key, None)
            self.stats.evictions += 1
            self._m_evictions.inc()
            self._m_resident.dec(evicted_size)
        self._cache[key] = size
        self._cached_bytes += size
        self._m_resident.inc(size)
        if keep_resident:
            self._resident[key] = payload

    # -- convenience ----------------------------------------------------------

    def fits_entirely(self) -> bool:
        """Whether all stored batches fit in the budget simultaneously."""
        return sum(len(p) for p in self._store.values()) <= self.budget_bytes

    def total_stored_bytes(self) -> int:
        return sum(len(p) for p in self._store.values())

    def reset_stats(self) -> None:
        self.stats = BufferPoolStats()
