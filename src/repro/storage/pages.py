"""Fixed-size pages for the heap table of compressed mini-batches.

Postgres-style 8 KiB pages with a per-page and per-item header: this is the
source of the "fudge factor" the paper mentions when comparing BismarckTOC
to the raw C++ loop — variable-length blobs never pack pages perfectly, so
the stored size (and thus the IO volume) is slightly larger than the sum of
the blob sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Page size, matching Postgres' default heap page.
PAGE_SIZE_BYTES = 8192

#: Fixed header at the start of every page.
PAGE_HEADER_BYTES = 24

#: Per-item (per-blob-chunk) overhead: item pointer + tuple header.
ITEM_HEADER_BYTES = 28


@dataclass
class Page:
    """One fixed-size page holding chunks of serialised mini-batches."""

    page_id: int
    used_bytes: int = PAGE_HEADER_BYTES
    items: list[tuple[int, int]] = field(default_factory=list)  # (batch_id, chunk_bytes)

    @property
    def free_bytes(self) -> int:
        return PAGE_SIZE_BYTES - self.used_bytes

    def can_fit(self, payload_bytes: int) -> bool:
        """Whether a chunk of ``payload_bytes`` (plus header) fits on this page."""
        return self.free_bytes >= payload_bytes + ITEM_HEADER_BYTES

    def add_item(self, batch_id: int, payload_bytes: int) -> None:
        if not self.can_fit(payload_bytes):
            raise ValueError(
                f"page {self.page_id} cannot fit {payload_bytes} bytes "
                f"(free: {self.free_bytes - ITEM_HEADER_BYTES})"
            )
        self.used_bytes += payload_bytes + ITEM_HEADER_BYTES
        self.items.append((batch_id, payload_bytes))


def pages_needed(blob_bytes: int) -> int:
    """Number of pages a blob of ``blob_bytes`` occupies when chunked."""
    usable = PAGE_SIZE_BYTES - PAGE_HEADER_BYTES - ITEM_HEADER_BYTES
    if blob_bytes <= 0:
        return 1
    return -(-blob_bytes // usable)


#: Chunks smaller than this are not worth placing on an almost-full page;
#: a new page is opened instead (mirrors real slotted-page behaviour).
_MIN_CHUNK_BYTES = 64


def layout_blobs(blob_sizes: list[int]) -> list[Page]:
    """Lay out blobs onto pages, TOAST-style.

    Each blob is split into chunks sized to the free space of the page being
    filled, so pages pack tightly; the residual overhead is the per-page and
    per-chunk headers (the "fudge factor").
    """
    pages: list[Page] = []
    open_page: Page | None = None

    for batch_id, size in enumerate(blob_sizes):
        remaining = max(int(size), 1)
        while remaining > 0:
            if open_page is None or open_page.free_bytes - ITEM_HEADER_BYTES < _MIN_CHUNK_BYTES:
                open_page = Page(page_id=len(pages))
                pages.append(open_page)
            chunk = min(remaining, open_page.free_bytes - ITEM_HEADER_BYTES)
            open_page.add_item(batch_id, chunk)
            remaining -= chunk
    return pages


def stored_bytes(blob_sizes: list[int]) -> int:
    """Total on-disk bytes after page layout (includes the fudge factor)."""
    return len(layout_blobs(blob_sizes)) * PAGE_SIZE_BYTES
