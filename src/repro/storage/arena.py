"""Shared-memory-style model arena.

Bismarck keeps the model being trained in a shared-memory arena that UDF
invocations read and update in place.  The arena here is a flat float64
buffer with named segments: models check their parameter vectors in and out
of it, which is how the Bismarck-style session in
:mod:`repro.storage.bismarck` shares state across epoch "UDF calls".
"""

from __future__ import annotations

import numpy as np


class ModelArena:
    """A named-segment arena of float64 parameters."""

    def __init__(self, capacity: int = 1 << 22):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._segments: dict[str, tuple[int, int]] = {}
        self._cursor = 0

    @property
    def capacity(self) -> int:
        return int(self._buffer.size)

    @property
    def used(self) -> int:
        return self._cursor

    def allocate(self, name: str, size: int) -> None:
        """Reserve a named segment of ``size`` float64 slots."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        if size <= 0:
            raise ValueError("segment size must be positive")
        if self._cursor + size > self._buffer.size:
            raise MemoryError(
                f"arena exhausted: need {size} slots, {self._buffer.size - self._cursor} free"
            )
        self._segments[name] = (self._cursor, size)
        self._cursor += size

    def write(self, name: str, values: np.ndarray) -> None:
        """Write a parameter vector into its segment (allocating on first use)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if name not in self._segments:
            self.allocate(name, values.size)
        start, size = self._segments[name]
        if values.size != size:
            raise ValueError(f"segment {name!r} holds {size} values, got {values.size}")
        self._buffer[start : start + size] = values

    def read(self, name: str) -> np.ndarray:
        """Read a copy of the named segment."""
        if name not in self._segments:
            raise KeyError(f"segment {name!r} was never written")
        start, size = self._segments[name]
        return self._buffer[start : start + size].copy()

    def __contains__(self, name: str) -> bool:
        return name in self._segments
