"""Zero-copy shard reads: read-only mmap loaders returning memoryviews.

``path.read_bytes()`` copies the whole shard file into a fresh Python bytes
object on every miss.  For decode paths that only *view* the payload (every
``from_bytes`` accepts buffer objects), that copy is pure overhead: mapping
the file and handing out a ``memoryview`` lets NumPy's ``frombuffer`` read
the packed arrays straight from the page cache.

:func:`map_file` returns a ``memoryview`` over a read-only ``mmap``; the
view's buffer export keeps the mapping (and the pages) alive, so the file
descriptor is closed immediately and callers treat the view like bytes.
Empty files cannot be mapped — they come back as ``memoryview(b"")``.

:func:`make_loader` is what :class:`~repro.engine.shards.ShardedDataset`
registers with the buffer pool: it checks the ``REPRO_MMAP`` switch (default
on; set ``REPRO_MMAP=0`` to force copying reads) at *call* time so a running
process can be flipped for A/B measurements.  ``storage.mmap.maps`` /
``storage.mmap.bytes_mapped`` obs counters record how many reads took the
zero-copy path.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path

from repro.obs import metrics as obs_metrics

ENV_VAR = "REPRO_MMAP"

_FALSEY = {"0", "false", "no", "off"}


def mmap_enabled() -> bool:
    """Whether shard loaders should mmap (default) or copy (``REPRO_MMAP=0``)."""
    return os.environ.get(ENV_VAR, "1").strip().lower() not in _FALSEY


def map_file(path: Path | str) -> memoryview:
    """Map ``path`` read-only and return a zero-copy ``memoryview`` of it.

    The mapping stays alive exactly as long as the returned view (or any
    slice of it, or any array viewing it) does.
    """
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        size = os.fstat(fd).st_size
        if size == 0:
            return memoryview(b"")
        mapping = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
    finally:
        os.close(fd)
    obs_metrics.counter("storage.mmap.maps").inc()
    obs_metrics.counter("storage.mmap.bytes_mapped").inc(size)
    return memoryview(mapping)


def read_buffer(path: Path | str):
    """One shard read honouring ``REPRO_MMAP``: a memoryview, or copied bytes."""
    if mmap_enabled():
        return map_file(path)
    return Path(path).read_bytes()


def make_loader(path: Path | str):
    """A zero-argument loader for :class:`~repro.storage.buffer_pool.DiskBlob`.

    The returned callable re-checks ``REPRO_MMAP`` on every invocation, so
    cache misses pick up the current setting.
    """
    path = Path(path)

    def load():
        return read_buffer(path)

    return load


__all__ = ["ENV_VAR", "make_loader", "map_file", "mmap_enabled", "read_buffer"]
