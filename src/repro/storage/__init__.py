"""Bismarck-like in-DB storage substrate and memory-pressure simulation.

The paper's end-to-end experiments hinge on two storage-level effects:

1. **which formats fit in memory** — once compressed mini-batches exceed the
   buffer budget they spill to disk and every epoch pays IO again
   (:mod:`repro.storage.buffer_pool`);
2. **integration into an RDBMS** — compressed batches stored as blobs in a
   heap table, model state in a shared-memory arena, training driven by a
   UDF-style epoch runner, all with a small storage fudge factor
   (:mod:`repro.storage.pages`, :mod:`repro.storage.table`,
   :mod:`repro.storage.arena`, :mod:`repro.storage.bismarck`).
"""

from repro.storage.arena import ModelArena
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool, BufferPoolStats, DiskBlob
from repro.storage.pages import Page, PAGE_SIZE_BYTES
from repro.storage.table import BlobTable

__all__ = [
    "BismarckSession",
    "BlobTable",
    "BufferPool",
    "BufferPoolStats",
    "DiskBlob",
    "ModelArena",
    "PAGE_SIZE_BYTES",
    "Page",
]
