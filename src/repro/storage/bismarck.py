"""Bismarck-style in-database MGD training session.

Mirrors the integration described in Appendix D.1 of the paper:

1. compressed mini-batches live in a database table
   (:class:`repro.storage.table.BlobTable`) and are read through the buffer
   pool, so the storage fudge factor and memory pressure are accounted for;
2. the model lives in a shared-memory arena
   (:class:`repro.storage.arena.ModelArena`);
3. each epoch is a UDF-style pass that reads every batch row, updates the
   arena-resident model with the compressed matrix kernel, and writes the
   model back.

``run_epoch``/``train`` report both the measured wall-clock compute time and
the simulated IO time charged by the buffer pool, which is what the
end-to-end benches sum to reproduce Tables 6/7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import CompressionScheme
from repro.storage.arena import ModelArena
from repro.storage.buffer_pool import BufferPool
from repro.storage.table import BlobTable


@dataclass
class EpochReport:
    """Timing and loss information for one epoch of in-database training."""

    compute_seconds: float
    io_seconds: float
    mean_loss: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds


@dataclass
class SessionReport:
    """Aggregated result of a training session."""

    epochs: list[EpochReport] = field(default_factory=list)

    @property
    def total_compute_seconds(self) -> float:
        return sum(e.compute_seconds for e in self.epochs)

    @property
    def total_io_seconds(self) -> float:
        return sum(e.io_seconds for e in self.epochs)

    @property
    def total_seconds(self) -> float:
        return self.total_compute_seconds + self.total_io_seconds

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].mean_loss


class BismarckSession:
    """Train a model over compressed batches stored in a blob table."""

    MODEL_SEGMENT = "model"

    def __init__(
        self,
        scheme: CompressionScheme | None,
        buffer_pool: BufferPool,
        arena: ModelArena | None = None,
        table: BlobTable | None = None,
    ):
        self.table = table if table is not None else BlobTable(scheme, buffer_pool)
        self.arena = arena or ModelArena()

    # -- setup -----------------------------------------------------------------

    def load(self, batches: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Compress and store the mini-batches in the table."""
        self.table.load_batches(batches)

    def register_model(self, model) -> None:
        """Place the model's parameters in the shared arena."""
        self.arena.write(self.MODEL_SEGMENT, model.get_parameters())

    # -- training ----------------------------------------------------------------

    def run_epoch(self, model, learning_rate: float) -> EpochReport:
        """One UDF-style pass over the table updating the arena-resident model."""
        if self.MODEL_SEGMENT not in self.arena:
            raise RuntimeError("register_model must be called before training")
        model.set_parameters(self.arena.read(self.MODEL_SEGMENT))

        io_before = self.table.buffer_pool.stats.simulated_io_seconds
        start = time.perf_counter()
        losses = []
        for compressed, labels in self.table.iter_batches():
            model.gradient_step(compressed, labels, learning_rate)
            losses.append(model.loss(compressed, labels))
        compute = time.perf_counter() - start
        io = self.table.buffer_pool.stats.simulated_io_seconds - io_before

        self.arena.write(self.MODEL_SEGMENT, model.get_parameters())
        return EpochReport(
            compute_seconds=compute,
            io_seconds=io,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
        )

    def train(self, model, epochs: int, learning_rate: float) -> SessionReport:
        """Run ``epochs`` passes, mirroring the paper's fixed-epoch protocol."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.register_model(model)
        report = SessionReport()
        for _ in range(epochs):
            report.epochs.append(self.run_epoch(model, learning_rate))
        return report
