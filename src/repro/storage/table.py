"""Heap table of compressed mini-batch blobs.

A :class:`BlobTable` stores one row per mini-batch: the batch id, the
serialised compressed bytes, and the label vector.  Rows are laid out onto
fixed-size pages (:mod:`repro.storage.pages`) and read back through a
:class:`repro.storage.buffer_pool.BufferPool`, so the table captures both
the page-layout fudge factor and the fits-in-memory-or-not behaviour that
the Bismarck experiments measure.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionScheme
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import stored_bytes


class BlobTable:
    """A table of compressed mini-batches backed by a buffer pool."""

    def __init__(self, scheme: CompressionScheme, buffer_pool: BufferPool):
        self.scheme = scheme
        self.buffer_pool = buffer_pool
        self._labels: dict[int, np.ndarray] = {}
        self._blob_sizes: dict[int, int] = {}

    # -- loading ---------------------------------------------------------------

    def load_batches(self, batches: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Compress and store ``(features, labels)`` mini-batches."""
        for batch_id, (features, labels) in enumerate(batches):
            compressed = self.scheme.compress(features)
            payload = compressed.to_bytes()
            self.buffer_pool.put_on_disk(batch_id, payload)
            self._labels[batch_id] = np.asarray(labels)
            self._blob_sizes[batch_id] = len(payload)

    def __len__(self) -> int:
        return len(self._labels)

    # -- reading ----------------------------------------------------------------

    def read_batch(self, batch_id: int):
        """Return ``(compressed_matrix, labels)`` going through the buffer pool."""
        payload = self.buffer_pool.read(batch_id)
        compressed = self.scheme.decompress_bytes(payload)
        return compressed, self._labels[batch_id]

    def iter_batches(self):
        """Iterate over all batches in storage order (one epoch's access pattern)."""
        for batch_id in range(len(self)):
            yield self.read_batch(batch_id)

    # -- statistics --------------------------------------------------------------

    def logical_bytes(self) -> int:
        """Sum of the compressed blob sizes."""
        return sum(self._blob_sizes.values())

    def physical_bytes(self) -> int:
        """On-disk size including the page-layout fudge factor."""
        return stored_bytes([self._blob_sizes[i] for i in range(len(self))])

    def fudge_factor(self) -> float:
        """Physical over logical size (>= 1.0)."""
        logical = self.logical_bytes()
        return self.physical_bytes() / logical if logical else 1.0
