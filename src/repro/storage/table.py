"""Heap table of compressed mini-batch blobs.

A :class:`BlobTable` stores one row per mini-batch: the batch id, the
serialised compressed bytes, and the label vector.  Rows are laid out onto
fixed-size pages (:mod:`repro.storage.pages`) and read back through a
:class:`repro.storage.buffer_pool.BufferPool`, so the table captures both
the page-layout fudge factor and the fits-in-memory-or-not behaviour that
the Bismarck experiments measure.

Each row may carry its own decoder: heterogeneous shard directories
(``scheme="auto"``) attach with one scheme per row, while homogeneous
tables keep using the table-level default.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressionScheme
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import stored_bytes


class BlobTable:
    """A table of compressed mini-batches backed by a buffer pool."""

    def __init__(self, scheme: CompressionScheme | None, buffer_pool: BufferPool):
        self.scheme = scheme
        self.buffer_pool = buffer_pool
        self._labels: dict[int, np.ndarray] = {}
        self._blob_sizes: dict[int, int] = {}
        self._schemes: dict[int, CompressionScheme] = {}

    # -- loading ---------------------------------------------------------------

    def load_batches(self, batches: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Compress and store ``(features, labels)`` mini-batches."""
        if self.scheme is None:
            raise ValueError("load_batches needs a table-level scheme to compress with")
        for batch_id, (features, labels) in enumerate(batches):
            compressed = self.scheme.compress(features)
            self.add_encoded(batch_id, labels, payload=compressed.to_bytes())

    def add_encoded(
        self,
        batch_id: int,
        labels: np.ndarray,
        *,
        payload: bytes | None = None,
        size: int | None = None,
        loader=None,
        scheme: CompressionScheme | None = None,
    ) -> None:
        """Store one already-encoded row (bytes, or a lazy on-disk blob).

        This is how the out-of-core engine attaches shard files produced by
        its parallel encode pipeline: it passes ``size`` + ``loader`` so the
        blob bytes stay on disk until the buffer pool admits them, and
        ``scheme`` so each row decodes with what its manifest entry records
        (falling back to the table-level default when omitted).
        """
        if payload is not None:
            self.buffer_pool.put_on_disk(batch_id, payload)
            self._blob_sizes[batch_id] = len(payload)
        else:
            if size is None or loader is None:
                raise ValueError("lazy rows need both size and loader")
            self.buffer_pool.put_on_disk(batch_id, size=size, loader=loader)
            self._blob_sizes[batch_id] = int(size)
        if scheme is not None:
            self._schemes[batch_id] = scheme
        self._labels[batch_id] = np.asarray(labels)

    def __len__(self) -> int:
        return len(self._labels)

    # -- reading ----------------------------------------------------------------

    def scheme_for(self, batch_id: int) -> CompressionScheme:
        """The decoder for one row: its own scheme, else the table default."""
        scheme = self._schemes.get(batch_id, self.scheme)
        if scheme is None:
            raise ValueError(f"row {batch_id} has no scheme and the table has no default")
        return scheme

    def read_batch(self, batch_id: int):
        """Return ``(compressed_matrix, labels)`` going through the buffer pool."""
        payload = self.buffer_pool.read(batch_id)
        compressed = self.scheme_for(batch_id).decompress_bytes(payload)
        return compressed, self._labels[batch_id]

    def iter_batches(self):
        """Iterate over all batches in storage order (one epoch's access pattern)."""
        for batch_id in range(len(self)):
            yield self.read_batch(batch_id)

    # -- statistics --------------------------------------------------------------

    def logical_bytes(self) -> int:
        """Sum of the compressed blob sizes."""
        return sum(self._blob_sizes.values())

    def physical_bytes(self) -> int:
        """On-disk size including the page-layout fudge factor."""
        return stored_bytes([self._blob_sizes[i] for i in range(len(self))])

    def fudge_factor(self) -> float:
        """Physical over logical size (>= 1.0)."""
        logical = self.logical_bytes()
        return self.physical_bytes() / logical if logical else 1.0
