"""The encoding prefix tree ``C`` (Section 3.1.1 of the paper).

Every node except the root stores a column-index:value pair as its key and
represents the sequence of pairs spelled out on the path from the root.
The tree exposes the two APIs the paper defines:

* ``AddNode(n, k)`` — add a child with key ``k`` under node ``n``; returns
  the new node's index (indices are assigned sequentially).
* ``GetIndex(n, k)`` — return the index of the child of ``n`` whose key is
  ``k``, or ``-1`` if no such child exists.

Child lookup uses a per-node hash map from child key to child index, the
standard technique the paper cites.
"""

from __future__ import annotations

from repro.core.pairs import pair_key

ROOT_INDEX = 0
NOT_FOUND = -1


class PrefixTree:
    """Prefix tree used while encoding (root has index 0 and no key)."""

    def __init__(self) -> None:
        # Parallel arrays indexed by node index.  Index 0 is the root, which
        # has no key and is its own parent by convention.
        self._keys: list[tuple[int, float] | None] = [None]
        self._parents: list[int] = [ROOT_INDEX]
        self._children: list[dict[tuple[int, float], int]] = [{}]

    def __len__(self) -> int:
        return len(self._keys)

    def add_node(self, parent: int, key: tuple[int, float]) -> int:
        """Create a child of ``parent`` with ``key``; return its index."""
        key = pair_key(*key)
        index = len(self._keys)
        self._keys.append(key)
        self._parents.append(parent)
        self._children.append({})
        self._children[parent][key] = index
        return index

    def get_index(self, parent: int, key: tuple[int, float]) -> int:
        """Return the index of ``parent``'s child keyed by ``key`` or ``-1``."""
        return self._children[parent].get(pair_key(*key), NOT_FOUND)

    def key(self, index: int) -> tuple[int, float]:
        """Return the key (column, value) stored at ``index``."""
        key = self._keys[index]
        if key is None:
            raise ValueError("the root node has no key")
        return key

    def parent(self, index: int) -> int:
        """Return the parent index of node ``index``."""
        return self._parents[index]

    def sequence(self, index: int) -> list[tuple[int, float]]:
        """Return the pair sequence represented by node ``index`` (root→node)."""
        path: list[tuple[int, float]] = []
        node = index
        while node != ROOT_INDEX:
            path.append(self.key(node))
            node = self._parents[node]
        path.reverse()
        return path

    def first_layer(self) -> list[tuple[int, float]]:
        """Return the keys of the root's children ordered by node index.

        This is the ``I`` output of the paper's Figure 3: because phase I of
        Algorithm 1 inserts every unique pair before any deeper node is
        created, the root's children always occupy indices ``1..len(I)``.
        """
        keys: list[tuple[int, float]] = []
        for index in range(1, len(self._keys)):
            if self._parents[index] != ROOT_INDEX:
                break
            keys.append(self.key(index))
        return keys

    def depth(self, index: int) -> int:
        """Length of the sequence represented by node ``index``."""
        depth = 0
        node = index
        while node != ROOT_INDEX:
            depth += 1
            node = self._parents[node]
        return depth
