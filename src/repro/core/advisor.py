"""Scheme selection from a mini-batch sample.

Section 5.1 of the paper ends with a practical recommendation: "one can
simply test TOC on a mini-batch sample and figure out if TOC is suitable for
the dataset".  This module turns that advice into a utility: measure every
registered scheme on a sample batch and recommend one, weighing compression
ratio against whether matrix operations can run without decompression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.registry import available_schemes, get_scheme


@dataclass(frozen=True)
class SchemeReport:
    """Measured behaviour of one scheme on the sample batch."""

    name: str
    compression_ratio: float
    supports_direct_ops: bool

    @property
    def score(self) -> float:
        """Ranking score: ratio, discounted when every op must decompress.

        The discount reflects the paper's Figure 8: byte-block schemes pay a
        full inflate on every matrix operation, so their ratio advantage has
        to be large before they win end-to-end.
        """
        penalty = 1.0 if self.supports_direct_ops else 0.25
        return self.compression_ratio * penalty


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output: a ranked list plus the chosen scheme."""

    sample_shape: tuple[int, int]
    reports: tuple[SchemeReport, ...]

    @property
    def best(self) -> SchemeReport:
        return self.reports[0]

    def ranked_names(self) -> list[str]:
        return [report.name for report in self.reports]


def recommend_scheme(sample_batch: np.ndarray, schemes: list[str] | None = None) -> Recommendation:
    """Measure ``schemes`` (default: all registered) on a sample mini-batch.

    Returns a :class:`Recommendation` whose reports are sorted best-first.
    The sample should be a representative mini-batch (a few hundred rows);
    compression behaviour is stable across batches drawn from the same data.
    """
    batch = np.asarray(sample_batch, dtype=np.float64)
    if batch.ndim != 2 or batch.size == 0:
        raise ValueError("the sample batch must be a non-empty 2-D matrix")
    names = list(schemes) if schemes is not None else available_schemes()
    reports = []
    for name in names:
        compressed = get_scheme(name).compress(batch)
        reports.append(
            SchemeReport(
                name=name,
                compression_ratio=compressed.compression_ratio(),
                supports_direct_ops=compressed.supports_direct_ops,
            )
        )
    reports.sort(key=lambda report: report.score, reverse=True)
    return Recommendation(sample_shape=batch.shape, reports=tuple(reports))
