"""Scheme selection from a mini-batch sample.

Section 5.1 of the paper ends with a practical recommendation: "one can
simply test TOC on a mini-batch sample and figure out if TOC is suitable for
the dataset".  This module turns that advice into a utility: measure every
registered scheme on a sample batch and recommend one.

Two rankings are available:

* **measured cost** (preferred): pass a :class:`~repro.core.calibration.Calibration`
  and a ``workload`` and each scheme is scored by ``bytes × expected op
  mix`` — the kernel timings actually measured on this machine, weighted by
  the ops the workload runs, plus an I/O term from the compressed bytes.
  This is what fixes the systematic mis-selection the flat penalty causes
  on machines whose kernel costs diverge from the guess (Figure 8).
* **ratio fallback**: without a calibration the original ranking applies —
  compression ratio, discounted by a flat 0.25 for schemes whose every op
  must decompress first.  Ties break deterministically on the scheme name.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.registry import available_schemes, get_scheme
from repro.core.calibration import WORKLOAD_MIXES, WORKLOADS, Calibration


@dataclass(frozen=True)
class SchemeReport:
    """Measured behaviour of one scheme on the sample batch."""

    name: str
    compression_ratio: float
    supports_direct_ops: bool
    #: Expected seconds per matrix element under the requested workload,
    #: from the calibrated cost model; ``None`` when ranked by ratio only.
    measured_cost: float | None = None

    @property
    def score(self) -> float:
        """Fallback ranking score: ratio, discounted when every op must decompress.

        The discount reflects the paper's Figure 8: byte-block schemes pay a
        full inflate on every matrix operation, so their ratio advantage has
        to be large before they win end-to-end.  It is a guess — the
        calibrated ranking replaces it with measurements when available.
        """
        penalty = 1.0 if self.supports_direct_ops else 0.25
        return self.compression_ratio * penalty


def _fallback_rank_key(report: SchemeReport):
    """Ratio ranking: score descending, scheme name breaking ties.

    Without the name tie-break the order of equal-scored schemes (Snappy and
    Gzip tie routinely) would depend on registry insertion order.
    """
    return (-report.score, report.name)


def _calibrated_rank_key(report: SchemeReport):
    """Measured-cost ranking: cheapest first, scheme name breaking ties."""
    return (report.measured_cost, report.name)


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output: a ranked list plus the chosen scheme."""

    sample_shape: tuple[int, int]
    reports: tuple[SchemeReport, ...]
    #: The workload the ranking was scored for (``None``: ratio fallback).
    workload: str | None = None
    #: Whether measured kernel costs (vs the flat-penalty guess) ranked it.
    calibrated: bool = False

    @property
    def best(self) -> SchemeReport:
        return self.reports[0]

    def ranked_names(self) -> list[str]:
        return [report.name for report in self.reports]


def recommend_scheme(
    sample_batch: np.ndarray,
    schemes: list[str] | None = None,
    *,
    workload: str | None = None,
    calibration: Calibration | None = None,
) -> Recommendation:
    """Measure ``schemes`` (default: all registered) on a sample mini-batch.

    Returns a :class:`Recommendation` whose reports are sorted best-first.
    The sample should be a representative mini-batch (a few hundred rows);
    compression behaviour is stable across batches drawn from the same data.

    With a ``calibration`` the ranking minimises the measured cost of
    ``workload`` (default ``"train"``); without one, the ratio-only fallback
    ranks exactly as before (modulo the deterministic name tie-break), and
    ``workload`` is validated but otherwise ignored.

    Compression ratios are computed against the *source* dtype's dense
    footprint: schemes store float64 internally, but a float32 sample's
    baseline is 4 bytes per element, not 8 — the old float64 baseline
    overstated ratios 2x for float32 datasets.
    """
    if workload is not None and workload not in WORKLOAD_MIXES:
        raise ValueError(
            f"unknown workload {workload!r}; valid workloads: {list(WORKLOADS)}"
        )
    source = np.asarray(sample_batch)
    batch = np.asarray(source, dtype=np.float64)
    if batch.ndim != 2 or batch.size == 0:
        raise ValueError("the sample batch must be a non-empty 2-D matrix")
    source_itemsize = source.dtype.itemsize if source.dtype.kind in "biuf" else 8
    dense_bytes = batch.shape[0] * batch.shape[1] * source_itemsize
    sparsity = float(np.mean(batch == 0.0))
    names = list(schemes) if schemes is not None else available_schemes()
    effective_workload = workload
    if calibration is not None:
        effective_workload = workload or "train"
    reports = []
    for name in names:
        compressed = get_scheme(name).compress(batch)
        cost = None
        if calibration is not None:
            cost = calibration.expected_cost(
                name,
                workload=effective_workload,
                sparsity=sparsity,
                bytes_per_element=compressed.nbytes / batch.size,
            )
        reports.append(
            SchemeReport(
                name=name,
                compression_ratio=dense_bytes / max(compressed.nbytes, 1),
                supports_direct_ops=compressed.supports_direct_ops,
                measured_cost=cost,
            )
        )
    key = _calibrated_rank_key if calibration is not None else _fallback_rank_key
    reports.sort(key=key)
    return Recommendation(
        sample_shape=batch.shape,
        reports=tuple(reports),
        workload=effective_workload,
        calibrated=calibration is not None,
    )
