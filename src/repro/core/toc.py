"""The user-facing TOC compressed matrix.

:class:`TOCMatrix` ties the three encoding layers together and exposes the
compressed matrix operations as methods so that ML code can treat a TOC
mini-batch almost like a NumPy array:

>>> import numpy as np
>>> from repro.core import TOCMatrix
>>> batch = np.array([[1.1, 2, 3, 1.4], [1.1, 2, 3, 0], [0, 1.1, 3, 1.4], [1.1, 2, 0, 0]])
>>> toc = TOCMatrix.encode(batch)
>>> np.allclose(toc.matvec(np.ones(4)), batch @ np.ones(4))
True

The :class:`TOCVariant` enum selects how many layers are applied; it exists
to support the paper's ablation studies (``TOC_SPARSE``,
``TOC_SPARSE_AND_LOGICAL``, ``TOC_FULL``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core import ops
from repro.core.decode_tree import DecodeTree, build_decode_tree
from repro.core.logical import LogicalEncoding, prefix_tree_encode
from repro.core.physical import (
    PhysicalEncoding,
    logical_nbytes,
    physical_decode,
    physical_encode,
)
from repro.core.sparse import SparseEncodedTable, sparse_decode, sparse_encode


class TOCVariant(enum.Enum):
    """Which TOC layers are applied — used for the paper's ablations."""

    SPARSE = "sparse"
    SPARSE_AND_LOGICAL = "sparse_and_logical"
    FULL = "full"


@dataclass
class TOCMatrix:
    """A mini-batch compressed with tuple-oriented compression.

    Instances are created with :meth:`encode` (from a dense matrix) or
    :meth:`from_bytes` (from a serialised physical encoding).  The logical
    encoding is always materialised in memory; the physical bytes are kept
    when ``variant`` is :attr:`TOCVariant.FULL` and are what the compression
    ratio measures.
    """

    logical: LogicalEncoding
    variant: TOCVariant = TOCVariant.FULL
    physical: PhysicalEncoding | None = None
    _decode_tree: DecodeTree | None = field(default=None, repr=False)
    _sparse_nbytes: int | None = field(default=None, repr=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def encode(
        cls, matrix: np.ndarray, variant: TOCVariant = TOCVariant.FULL
    ) -> "TOCMatrix":
        """Compress a dense matrix with TOC."""
        sparse = sparse_encode(np.asarray(matrix, dtype=np.float64))
        return cls.from_sparse(sparse, variant=variant)

    @classmethod
    def from_sparse(
        cls, sparse: SparseEncodedTable, variant: TOCVariant = TOCVariant.FULL
    ) -> "TOCMatrix":
        """Compress an already sparse-encoded table with TOC."""
        logical, _ = prefix_tree_encode(sparse)
        physical = physical_encode(logical) if variant is TOCVariant.FULL else None
        return cls(
            logical=logical,
            variant=variant,
            physical=physical,
            _sparse_nbytes=sparse.nbytes,
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TOCMatrix":
        """Deserialise a TOC matrix from its physical byte representation."""
        physical = PhysicalEncoding.from_bytes(raw)
        return cls(logical=physical_decode(physical), variant=TOCVariant.FULL, physical=physical)

    @classmethod
    def encode_to_bytes(cls, matrix: np.ndarray) -> bytes:
        """Convenience: compress and serialise in one step.

        The result round-trips exactly through :meth:`from_bytes`, so the
        bytes can be persisted and decoded in a different process than the
        one that encoded them.  (The out-of-core engine goes through the
        scheme-generic ``compress(...).to_bytes()`` path instead, so it
        works for every registered scheme.)
        """
        return cls.encode(matrix, variant=TOCVariant.FULL).to_bytes()

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.logical.shape

    @property
    def n_rows(self) -> int:
        return self.logical.n_rows

    @property
    def n_cols(self) -> int:
        return self.logical.n_cols

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes according to the selected variant."""
        if self.variant is TOCVariant.FULL:
            if self.physical is None:
                self.physical = physical_encode(self.logical)
            return self.physical.nbytes
        if self.variant is TOCVariant.SPARSE_AND_LOGICAL:
            return logical_nbytes(self.logical)
        # SPARSE variant: cost of the plain sparse encoding (col idx + value
        # per non-zero plus row offsets), computed at encode time.
        if self._sparse_nbytes is None:
            self._sparse_nbytes = ops.decode_to_sparse(self.logical).nbytes
        return self._sparse_nbytes

    @property
    def decode_tree(self) -> DecodeTree:
        """The decoding tree ``C'``, built lazily and cached."""
        if self._decode_tree is None:
            self._decode_tree = build_decode_tree(self.logical)
        return self._decode_tree

    def to_bytes(self) -> bytes:
        """Serialise the physical encoding (always available on demand)."""
        if self.physical is None:
            self.physical = physical_encode(self.logical)
        return self.physical.to_bytes()

    # -- compressed execution ----------------------------------------------

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """``A @ v`` without decompression (Algorithm 4)."""
        return ops.matrix_times_vector(self.logical, vector, self.decode_tree)

    def rmatvec(self, vector: np.ndarray) -> np.ndarray:
        """``v @ A`` without decompression (Algorithm 5)."""
        return ops.vector_times_matrix(self.logical, vector, self.decode_tree)

    def matmat(self, matrix: np.ndarray) -> np.ndarray:
        """``A @ M`` without decompression (Algorithm 7)."""
        return ops.matrix_times_matrix(self.logical, matrix, self.decode_tree)

    def rmatmat(self, matrix: np.ndarray) -> np.ndarray:
        """``M @ A`` without decompression (Algorithm 8)."""
        return ops.uncompressed_matrix_times_matrix(self.logical, matrix, self.decode_tree)

    def scale(self, scalar: float) -> "TOCMatrix":
        """``A .* c`` — returns a new TOC matrix sharing the code arrays."""
        scaled = ops.matrix_times_scalar(self.logical, scalar)
        return TOCMatrix(logical=scaled, variant=self.variant, _decode_tree=None)

    def power(self, exponent: float) -> "TOCMatrix":
        """``A .^ p`` for positive ``p`` (sparse-safe)."""
        powered = ops.matrix_elementwise_power(self.logical, exponent)
        return TOCMatrix(logical=powered, variant=self.variant, _decode_tree=None)

    def add_scalar(self, scalar: float) -> np.ndarray:
        """``A .+ c`` — sparse-unsafe, returns a dense matrix (Algorithm 6)."""
        return ops.matrix_plus_scalar(self.logical, scalar, self.decode_tree)

    # -- decoding ------------------------------------------------------------

    def to_sparse(self) -> SparseEncodedTable:
        """Decode back to the sparse-encoded table."""
        return ops.decode_to_sparse(self.logical, self.decode_tree)

    def to_dense(self) -> np.ndarray:
        """Fully decode back to a dense NumPy matrix."""
        return sparse_decode(self.to_sparse())

    def row_slice(self, rows: np.ndarray) -> np.ndarray:
        """Dense copy of the selected rows, in request order.

        Decodes only the selected rows' code runs through the decode tree
        (``O(selected codes)``) — no selection matrix, no full decode.
        Duplicate indices yield independent output rows.
        """
        return ops.decode_rows_to_dense(self.logical, rows, self.decode_tree)

    # -- statistics -----------------------------------------------------------

    def compression_ratio(self) -> float:
        """Dense (DEN) size divided by the compressed size."""
        dense_bytes = self.n_rows * self.n_cols * 8
        return dense_bytes / max(self.nbytes, 1)

    def stats(self) -> dict[str, float]:
        """Summary statistics useful for diagnostics and the benches."""
        return {
            "rows": float(self.n_rows),
            "cols": float(self.n_cols),
            "nnz": float(self.to_sparse().nnz),
            "first_layer": float(self.logical.n_first_layer),
            "codes": float(self.logical.n_codes),
            "tree_nodes": float(self.logical.n_tree_nodes),
            "compressed_bytes": float(self.nbytes),
            "compression_ratio": self.compression_ratio(),
        }
