"""Sparse encoding — step 1 of TOC (Figure 3 of the paper).

Zero values are dropped and every remaining value is prefixed with its
column index, turning each matrix row into a list of column-index:value
pairs.  The output is stored CSR-style (flat ``columns`` / ``values`` arrays
plus per-row offsets) so later stages stay vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SparseEncodedTable:
    """The sparse-encoded table ``B`` in the paper's Figure 3.

    Attributes
    ----------
    columns, values:
        Flat arrays of the column indexes and values of all non-zero cells,
        row-major.
    row_offsets:
        ``row_offsets[i]:row_offsets[i + 1]`` slices out row ``i``'s pairs.
    shape:
        Shape of the original dense matrix (rows, columns).
    """

    columns: np.ndarray
    values: np.ndarray
    row_offsets: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if self.row_offsets.size != n_rows + 1:
            raise ValueError("row_offsets must have exactly one more entry than rows")
        if self.columns.size != self.values.size:
            raise ValueError("columns and values must have the same length")
        if int(self.row_offsets[-1]) != self.columns.size:
            raise ValueError("row_offsets must end at the number of stored pairs")
        if self.columns.size and (self.columns.min() < 0 or self.columns.max() >= n_cols):
            raise ValueError("column index out of range for the declared shape")

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) pairs."""
        return int(self.columns.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint of the sparse encoding.

        Uses the conventional on-disk layout (4-byte column indexes and row
        offsets, 8-byte double values) so the ablation variant TOC_SPARSE is
        directly comparable to the CSR baseline.
        """
        return int(self.columns.size * 4 + self.values.size * 8 + self.row_offsets.size * 4)

    def row_pairs(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the column indexes and values of ``row``."""
        start, end = int(self.row_offsets[row]), int(self.row_offsets[row + 1])
        return self.columns[start:end], self.values[start:end]

    def iter_rows(self):
        """Yield ``(columns, values)`` for each row in order."""
        for row in range(self.n_rows):
            yield self.row_pairs(row)


def sparse_encode(matrix: np.ndarray) -> SparseEncodedTable:
    """Sparse-encode a dense matrix (drop zeros, keep column prefixes)."""
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError(f"sparse_encode expects a 2-D matrix, got ndim={dense.ndim}")
    mask = dense != 0.0
    counts = mask.sum(axis=1)
    row_offsets = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    rows, cols = np.nonzero(mask)
    # np.nonzero already returns row-major order, matching row_offsets.
    values = dense[rows, cols]
    return SparseEncodedTable(
        columns=cols.astype(np.int64),
        values=values.astype(np.float64),
        row_offsets=row_offsets,
        shape=dense.shape,
    )


def sparse_decode(table: SparseEncodedTable) -> np.ndarray:
    """Rebuild the dense matrix from a :class:`SparseEncodedTable`."""
    dense = np.zeros(table.shape, dtype=np.float64)
    row_ids = np.repeat(
        np.arange(table.n_rows, dtype=np.int64), np.diff(table.row_offsets)
    )
    dense[row_ids, table.columns] = table.values
    return dense
