"""Column-index:value pairs — the compression unit of TOC.

A *pair* couples a column index with the non-zero value stored there
(written ``col:value`` in the paper, e.g. ``1:1.1``).  Sparse encoding turns
every matrix row into a list of pairs; logical encoding treats each pair as
an atomic symbol.  We keep pairs in struct-of-arrays form (parallel
``columns`` / ``values`` NumPy arrays) so downstream kernels stay vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PairArray:
    """A flat array of column-index:value pairs (struct-of-arrays layout)."""

    columns: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.columns.shape != self.values.shape:
            raise ValueError(
                f"columns and values must align: {self.columns.shape} vs {self.values.shape}"
            )
        if self.columns.ndim != 1:
            raise ValueError("PairArray expects one-dimensional arrays")

    def __len__(self) -> int:
        return int(self.columns.size)

    def __getitem__(self, index: int) -> tuple[int, float]:
        return int(self.columns[index]), float(self.values[index])

    def as_tuples(self) -> list[tuple[int, float]]:
        """Return the pairs as a list of ``(column, value)`` tuples."""
        return list(zip(self.columns.tolist(), self.values.tolist()))


def make_pair_array(columns: np.ndarray | list[int], values: np.ndarray | list[float]) -> PairArray:
    """Build a :class:`PairArray` from column indexes and values."""
    cols = np.asarray(columns, dtype=np.int64).ravel()
    vals = np.asarray(values, dtype=np.float64).ravel()
    return PairArray(columns=cols, values=vals)


def pair_key(column: int, value: float) -> tuple[int, float]:
    """Canonical hashable key for a pair (used by the encoding prefix tree)."""
    return int(column), float(value)
