"""Tuple-oriented compression (TOC): the paper's primary contribution.

The sub-modules follow the paper's structure:

* :mod:`repro.core.sparse` — sparse encoding (step 1 of Figure 3).
* :mod:`repro.core.prefix_tree` — the encoding prefix tree ``C`` (Section 3.1.1).
* :mod:`repro.core.logical` — the prefix-tree encoding algorithm
  (Algorithm 1, Section 3.1.2).
* :mod:`repro.core.physical` — bit packing + value indexing (Section 3.2).
* :mod:`repro.core.decode_tree` — the decoding tree ``C'`` (Algorithm 2).
* :mod:`repro.core.ops` — compressed matrix-operation execution
  (Algorithms 3–8, Section 4).
* :mod:`repro.core.toc` — the user-facing :class:`TOCMatrix` tying it together.
"""

from repro.core.logical import LogicalEncoding, prefix_tree_encode
from repro.core.ops import (
    matrix_plus_scalar,
    matrix_times_matrix,
    matrix_times_scalar,
    matrix_times_vector,
    uncompressed_matrix_times_matrix,
    vector_times_matrix,
)
from repro.core.sparse import SparseEncodedTable, sparse_decode, sparse_encode
from repro.core.toc import TOCMatrix, TOCVariant

__all__ = [
    "LogicalEncoding",
    "SparseEncodedTable",
    "TOCMatrix",
    "TOCVariant",
    "matrix_plus_scalar",
    "matrix_times_matrix",
    "matrix_times_scalar",
    "matrix_times_vector",
    "prefix_tree_encode",
    "sparse_decode",
    "sparse_encode",
    "uncompressed_matrix_times_matrix",
    "vector_times_matrix",
]
