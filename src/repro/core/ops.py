"""Compressed matrix-operation execution over the TOC output (Section 4).

All kernels work on the logical-encoding outputs ``I`` (first layer) and
``D`` (encoded table), plus the decoding tree ``C'`` rebuilt by
:func:`repro.core.decode_tree.build_decode_tree`.  The four classes of
operations the paper distinguishes are covered:

* sparse-safe element-wise ops (``A .* c``, ``A .^ 2``) — only ``I`` is
  touched (Algorithm 3);
* right multiplications (``A @ v``, ``A @ M``) — one scan of ``C'`` followed
  by one scan of ``D`` (Algorithm 4 / 7, Theorems 1 and 3);
* left multiplications (``v @ A``, ``M @ A``) — one scan of ``D`` followed by
  a backwards scan of ``C'`` (Algorithm 5 / 8, Theorems 2 and 4);
* sparse-unsafe element-wise ops (``A .+ c``) — require full decoding
  (Algorithm 6).

The per-node recurrences (``H[i] = key_i · v + H[parent_i]`` and the reverse
push-to-parent accumulation) are sequential in the tree order, so they are
evaluated with Python loops over pre-gathered NumPy arrays; the per-code
scans of ``D`` are fully vectorised with ``bincount`` / ``add.reduceat``.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.core.decode_tree import DecodeTree, build_decode_tree
from repro.core.logical import LogicalEncoding
from repro.core.sparse import SparseEncodedTable, sparse_decode


def _as_decode_tree(encoding: LogicalEncoding, tree: DecodeTree | None) -> DecodeTree:
    return tree if tree is not None else build_decode_tree(encoding)


def _row_ids(encoding: LogicalEncoding) -> np.ndarray:
    """Row id of every code in the flattened encoded table ``D``."""
    return np.repeat(
        np.arange(encoding.n_rows, dtype=np.int64), np.diff(encoding.row_offsets)
    )


def _scatter_add_rows(target: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> None:
    """``target[indices[i], :] += rows[i, :]`` with duplicate indices allowed.

    Equivalent to ``np.add.at(target, indices, rows)`` but implemented with a
    sort + segmented reduction, which is far faster for the sizes the
    matrix-matrix kernels see (``np.add.at`` falls back to an element-wise
    inner loop).
    """
    if indices.size == 0:
        return
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    sorted_rows = rows[order]
    boundaries = np.nonzero(np.diff(sorted_indices))[0] + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    sums = np.add.reduceat(sorted_rows, starts, axis=0)
    target[sorted_indices[starts]] += sums


# ---------------------------------------------------------------------------
# Sparse-safe element-wise operations (Algorithm 3)
# ---------------------------------------------------------------------------


def matrix_times_scalar(encoding: LogicalEncoding, scalar: float) -> LogicalEncoding:
    """``A .* c`` executed by rescaling the first-layer values only."""
    return LogicalEncoding(
        first_layer_columns=encoding.first_layer_columns,
        first_layer_values=encoding.first_layer_values * float(scalar),
        codes=encoding.codes,
        row_offsets=encoding.row_offsets,
        shape=encoding.shape,
    )


def matrix_elementwise_power(encoding: LogicalEncoding, exponent: float) -> LogicalEncoding:
    """``A .^ p`` (sparse-safe for positive exponents) on the first layer."""
    if exponent <= 0:
        raise ValueError("element-wise power is only sparse-safe for positive exponents")
    return LogicalEncoding(
        first_layer_columns=encoding.first_layer_columns,
        first_layer_values=encoding.first_layer_values ** float(exponent),
        codes=encoding.codes,
        row_offsets=encoding.row_offsets,
        shape=encoding.shape,
    )


def matrix_apply_sparse_safe(
    encoding: LogicalEncoding, func
) -> LogicalEncoding:
    """Apply an arbitrary sparse-safe scalar function to every stored value.

    ``func`` must map 0 to 0 for the result to equal the dense computation;
    that property is the caller's responsibility (it is asserted in tests).
    """
    return LogicalEncoding(
        first_layer_columns=encoding.first_layer_columns,
        first_layer_values=np.asarray(func(encoding.first_layer_values), dtype=np.float64),
        codes=encoding.codes,
        row_offsets=encoding.row_offsets,
        shape=encoding.shape,
    )


# ---------------------------------------------------------------------------
# Right multiplication (Theorem 1 / Algorithm 4 and Theorem 3 / Algorithm 7)
# ---------------------------------------------------------------------------


def _node_partial_products(tree: DecodeTree, vector: np.ndarray) -> np.ndarray:
    """Compute ``H[i] = C'[i].seq · v`` for every node via the parent recurrence.

    The recurrence ``H[i] = key_i · v + H[parent(i)]`` is evaluated one tree
    level at a time: all parents of depth-``d`` nodes live at depth ``d - 1``,
    so each level is a fully vectorised gather + add.
    """
    keys_dot_v = np.zeros(len(tree), dtype=np.float64)
    keys_dot_v[1:] = tree.key_values[1:] * vector[tree.key_columns[1:]]
    h = np.zeros(len(tree), dtype=np.float64)
    parents = tree.parents
    for nodes in tree.iter_levels():
        h[nodes] = keys_dot_v[nodes] + h[parents[nodes]]
    return h


def matrix_times_vector(
    encoding: LogicalEncoding,
    vector: np.ndarray,
    tree: DecodeTree | None = None,
) -> np.ndarray:
    """``A @ v`` executed directly on the TOC output (Algorithm 4)."""
    v = np.asarray(vector, dtype=np.float64).ravel()
    if v.size != encoding.n_cols:
        raise ValueError(f"vector has length {v.size}, expected {encoding.n_cols}")
    ctree = _as_decode_tree(encoding, tree)
    h = _node_partial_products(ctree, v)
    per_code = h[encoding.codes]
    offsets = encoding.row_offsets[:-1]
    if per_code.size == 0:
        return np.zeros(encoding.n_rows, dtype=np.float64)
    # Sum the per-code partials within each row.  add.reduceat needs strictly
    # valid start offsets; empty rows are handled by masking afterwards.
    result = np.zeros(encoding.n_rows, dtype=np.float64)
    lengths = np.diff(encoding.row_offsets)
    nonempty = lengths > 0
    if np.any(nonempty):
        starts = offsets[nonempty]
        sums = np.add.reduceat(per_code, starts)
        result[nonempty] = sums
    return result


def matrix_times_matrix(
    encoding: LogicalEncoding,
    matrix: np.ndarray,
    tree: DecodeTree | None = None,
) -> np.ndarray:
    """``A @ M`` executed directly on the TOC output (Algorithm 7)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != encoding.n_cols:
        raise ValueError(
            f"matrix has shape {m.shape}, expected ({encoding.n_cols}, k)"
        )
    ctree = _as_decode_tree(encoding, tree)
    # H[i, :] = C'[i].seq @ M via the same parent recurrence, vectorised over
    # the columns of M and evaluated level by level.
    keys_dot_m = np.zeros((len(ctree), m.shape[1]), dtype=np.float64)
    keys_dot_m[1:] = ctree.key_values[1:, None] * m[ctree.key_columns[1:], :]
    h = np.zeros_like(keys_dot_m)
    parents = ctree.parents
    for nodes in ctree.iter_levels():
        h[nodes] = keys_dot_m[nodes] + h[parents[nodes]]
    per_code = h[encoding.codes]
    result = np.zeros((encoding.n_rows, m.shape[1]), dtype=np.float64)
    if per_code.size:
        # Codes are already grouped by row, so a segmented reduction over the
        # row offsets sums each row's partial products in one pass.
        lengths = np.diff(encoding.row_offsets)
        nonempty = lengths > 0
        starts = encoding.row_offsets[:-1][nonempty]
        result[nonempty] = np.add.reduceat(per_code, starts, axis=0)
    return result


# ---------------------------------------------------------------------------
# Left multiplication (Theorem 2 / Algorithm 5 and Theorem 4 / Algorithm 8)
# ---------------------------------------------------------------------------


def vector_times_matrix(
    encoding: LogicalEncoding,
    vector: np.ndarray,
    tree: DecodeTree | None = None,
) -> np.ndarray:
    """``v @ A`` executed directly on the TOC output (Algorithm 5)."""
    v = np.asarray(vector, dtype=np.float64).ravel()
    if v.size != encoding.n_rows:
        raise ValueError(f"vector has length {v.size}, expected {encoding.n_rows}")
    ctree = _as_decode_tree(encoding, tree)
    # G(i): total weight of rows referencing node i, computed with one
    # vectorised scan of D.
    h = np.zeros(len(ctree), dtype=np.float64)
    if encoding.codes.size:
        row_ids = _row_ids(encoding)
        h += np.bincount(encoding.codes, weights=v[row_ids], minlength=len(ctree))
    # Backwards scan of C' (deepest level first): emit key * weight, push the
    # weight to the parent.  Within one level scatter-adds handle siblings
    # sharing a parent or a column.
    result = np.zeros(encoding.n_cols, dtype=np.float64)
    parents = ctree.parents
    key_cols = ctree.key_columns
    key_vals = ctree.key_values
    for nodes in ctree.iter_levels(reverse=True):
        weights = h[nodes]
        np.add.at(result, key_cols[nodes], key_vals[nodes] * weights)
        np.add.at(h, parents[nodes], weights)
    return result


def uncompressed_matrix_times_matrix(
    encoding: LogicalEncoding,
    matrix: np.ndarray,
    tree: DecodeTree | None = None,
) -> np.ndarray:
    """``M @ A`` executed directly on the TOC output (Algorithm 8)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[1] != encoding.n_rows:
        raise ValueError(
            f"matrix has shape {m.shape}, expected (k, {encoding.n_rows})"
        )
    ctree = _as_decode_tree(encoding, tree)
    n_out_rows = m.shape[0]
    # H[i, :] accumulates, for each tree node i, the sum of M[:, row] over the
    # rows whose encoding references node i (transposed layout as in the paper
    # so the D scan is a single scatter-add).
    h = np.zeros((len(ctree), n_out_rows), dtype=np.float64)
    if encoding.codes.size:
        row_ids = _row_ids(encoding)
        _scatter_add_rows(h, encoding.codes, m[:, row_ids].T)
    # Backwards level-by-level scan of C', accumulating into the transposed
    # result so the per-level updates are single segmented scatter-adds.
    result_t = np.zeros((encoding.n_cols, n_out_rows), dtype=np.float64)
    parents = ctree.parents
    key_cols = ctree.key_columns
    key_vals = ctree.key_values
    for nodes in ctree.iter_levels(reverse=True):
        weights = h[nodes]
        _scatter_add_rows(result_t, key_cols[nodes], key_vals[nodes][:, None] * weights)
        _scatter_add_rows(h, parents[nodes], weights)
    return result_t.T


# ---------------------------------------------------------------------------
# Sparse-unsafe element-wise operations (Algorithm 6) and full decode
# ---------------------------------------------------------------------------


def decode_to_sparse(
    encoding: LogicalEncoding, tree: DecodeTree | None = None
) -> SparseEncodedTable:
    """Decode the logical encoding back to a sparse-encoded table.

    Linear in the number of output pairs: every code's sequence is written
    back-to-front by walking up the tree, with all codes advanced in lockstep
    (one vectorised step per tree level).
    """
    ctree = _as_decode_tree(encoding, tree)
    lengths_per_code = ctree.depths[encoding.codes]
    total_pairs = int(lengths_per_code.sum())
    columns = np.zeros(total_pairs, dtype=np.int64)
    values = np.zeros(total_pairs, dtype=np.float64)

    if encoding.codes.size:
        ends = np.cumsum(lengths_per_code)
        current = encoding.codes.copy()
        positions = ends - 1
        active = current != 0
        while np.any(active):
            idx = positions[active]
            nodes = current[active]
            columns[idx] = ctree.key_columns[nodes]
            values[idx] = ctree.key_values[nodes]
            current[active] = ctree.parents[nodes]
            positions[active] -= 1
            active = current != 0

    # Row offsets in pair space: sum of sequence lengths per row.
    row_offsets = np.zeros(encoding.n_rows + 1, dtype=np.int64)
    if encoding.codes.size:
        row_ids = _row_ids(encoding)
        pairs_per_row = np.bincount(
            row_ids, weights=lengths_per_code, minlength=encoding.n_rows
        ).astype(np.int64)
        np.cumsum(pairs_per_row, out=row_offsets[1:])
    return SparseEncodedTable(
        columns=columns,
        values=values,
        row_offsets=row_offsets,
        shape=encoding.shape,
    )


def decode_to_dense(
    encoding: LogicalEncoding, tree: DecodeTree | None = None
) -> np.ndarray:
    """Fully decode the TOC output to a dense matrix."""
    return sparse_decode(decode_to_sparse(encoding, tree))


def decode_rows_to_dense(
    encoding: LogicalEncoding,
    rows: np.ndarray,
    tree: DecodeTree | None = None,
) -> np.ndarray:
    """Decode only ``rows`` (in request order, duplicates kept) to dense.

    Gathers just the selected rows' code runs and walks them through the
    decode tree — ``O(selected codes × depth)``, never touching the other
    rows' codes or materialising a selection matrix.
    """
    ctree = _as_decode_tree(encoding, tree)
    index = np.asarray(rows, dtype=np.intp).ravel()
    if index.size and (index.min() < 0 or index.max() >= encoding.n_rows):
        raise IndexError("row index out of range")
    return kernels.toc_row_slice(
        encoding.codes,
        encoding.row_offsets,
        ctree.key_columns,
        ctree.key_values,
        ctree.parents,
        index,
        encoding.n_cols,
    )


def matrix_plus_scalar(
    encoding: LogicalEncoding, scalar: float, tree: DecodeTree | None = None
) -> np.ndarray:
    """``A .+ c`` — sparse-unsafe, so the matrix is decoded first (Algorithm 6)."""
    return decode_to_dense(encoding, tree) + float(scalar)


def matrix_plus_matrix(
    encoding: LogicalEncoding, other: np.ndarray, tree: DecodeTree | None = None
) -> np.ndarray:
    """``A + M`` — sparse-unsafe element-wise addition with a dense matrix."""
    dense = decode_to_dense(encoding, tree)
    other = np.asarray(other, dtype=np.float64)
    if other.shape != dense.shape:
        raise ValueError(f"shape mismatch: {dense.shape} vs {other.shape}")
    return dense + other
