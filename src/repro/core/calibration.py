"""Measured-kernel calibration: the cost model behind workload-aware advice.

The Section 5.1 advisor originally ranked schemes by compression ratio with
a flat 0.25 penalty for decode-only schemes.  That guess is wrong exactly
where the paper's Figure 8 says kernel costs diverge: a scheme's ratio says
nothing about how fast *this machine* runs its ``matmat`` or ``row_slice``
kernels, so the flat penalty systematically mis-picks — and
``Dataset.compact(readvise=True)`` then bakes the wrong choice into every
shard.

This module replaces the guess with measurements:

* :func:`calibrate` times every registered scheme's kernels (``matvec`` /
  ``matmat`` / ``rmatvec`` / ``rmatmat`` / ``scale`` / ``row_slice`` /
  ``decode``) on synthetic batches at a few sparsity levels, reusing the
  benchmark harness timers (:func:`repro.bench.runner.time_matrix_ops`);
* the result — a :class:`Calibration` — persists as ``calibration.json``
  next to the dataset, stamped with the platform fingerprint and source
  commit exactly like ``write_bench_json`` snapshots, so the measurements
  stay attributable and a different machine recalibrates instead of
  trusting them;
* :func:`ensure_calibration` loads lazily (process cache → on-disk file →
  fresh pass) and recomputes only when the file is missing or stale
  (version bump, different platform, schemes not covered);
* :meth:`Calibration.expected_cost` scores ``bytes × expected op mix``:
  each workload in :data:`WORKLOAD_MIXES` weighs the ops it actually runs
  (``"train"`` is matmat-heavy epochs, ``"serve"`` is row_slice lookups,
  ``"scan"`` is decode+gather), plus an I/O term from the compressed bytes
  over the assumed disk bandwidth.

The advisor (:func:`repro.core.advisor.recommend_scheme`) consumes this via
its ``workload=`` / ``calibration=`` parameters; without a calibration it
falls back to the original ratio ranking.
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.runner import current_git_commit, time_callable, time_matrix_ops
from repro.compression.registry import available_schemes, get_scheme

#: Filename the calibration persists under, next to a dataset's manifest.
CALIBRATION_NAME = "calibration.json"

#: Schema version of the persisted file; bumping it makes old files stale.
CALIBRATION_VERSION = 1

#: Synthetic batch shape the kernels are timed on.  Small enough that a full
#: pass over every scheme stays well under a second, large enough that the
#: per-element timings rank the schemes the way real mini-batches do.
CALIBRATION_ROWS = 96
CALIBRATION_COLS = 32

#: Fractions of exact zeros the synthetic batches are generated at.  A
#: sample's own sparsity is matched to the nearest level at scoring time.
SPARSITY_LEVELS = (0.0, 0.5, 0.9)

#: Kernel names a calibration times for every scheme.
CALIBRATION_OPS = (
    "matvec",
    "matmat",
    "rmatvec",
    "rmatmat",
    "scale",
    "row_slice",
    "decode",
)

#: Expected op mix per workload: how many times each kernel runs per element
#: per pass.  ``train`` is one MGD epoch (forward ``A @ M``, gradient
#: ``M @ A``); ``serve`` is point lookups through ``row_slice``; ``scan`` is
#: decode-then-gather analytics.  Byte-block schemes pay their inflate
#: *inside* the measured kernels, so the mix needs no explicit decode term
#: for them — the measurement already contains it.
WORKLOAD_MIXES: dict[str, dict[str, float]] = {
    "train": {"matmat": 1.0, "rmatmat": 1.0},
    "serve": {"row_slice": 1.0},
    "scan": {"decode": 1.0, "row_slice": 0.25},
}

#: Valid ``workload=`` values, in a stable order for error messages.
WORKLOADS = tuple(sorted(WORKLOAD_MIXES))

#: Assumed sequential disk bandwidth for the I/O term of the cost model
#: (matches :class:`repro.engine.trainer.OutOfCoreTrainer`'s default).
DEFAULT_DISK_BANDWIDTH = 150e6

#: Mapping from the Figure 8 op labels ``time_matrix_ops`` reports to the
#: kernel names the calibration stores.
_FIGURE8_OPS = {
    "A*v": "matvec", "A*M": "matmat", "v*A": "rmatvec", "M*A": "rmatmat", "A*c": "scale",
}

#: Process-wide cache: kernel timings are per-machine, not per-dataset, so
#: one pass serves every dataset this process touches.
_PROCESS_CACHE: "Calibration | None" = None


def platform_fingerprint() -> dict:
    """The machine identity a calibration is valid for."""
    return {
        "python": platform_module.python_version(),
        "machine": platform_module.machine(),
        "system": platform_module.system(),
    }


def _level_key(level: float) -> str:
    """JSON object key for one sparsity level (``0.5`` -> ``"0.5"``)."""
    return repr(float(level))


def synthetic_batch(
    rows: int, cols: int, sparsity: float, seed: int = 0
) -> np.ndarray:
    """One calibration batch: quantised values with ``sparsity`` exact zeros.

    Values are rounded to one decimal so the value-index and code-table
    schemes see the repetition real feature data has; the zero mask gives
    the sparse formats their implicit zeros.
    """
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(rows, cols)).round(1)
    mask = rng.random((rows, cols)) >= sparsity
    batch = values * mask
    # Rounding can itself produce zeros; that only nudges the effective
    # sparsity upward, which the nearest-level match absorbs.
    return batch


@dataclass(frozen=True)
class Calibration:
    """Measured per-element kernel costs for every scheme on this machine."""

    version: int
    created_unix: float
    git_commit: str | None
    platform: dict
    rows: int
    cols: int
    sparsity_levels: tuple[float, ...]
    #: ``scheme -> sparsity-level key -> op -> seconds per matrix element``.
    timings: dict[str, dict[str, dict[str, float]]]

    # -- validity --------------------------------------------------------------

    def schemes(self) -> list[str]:
        return sorted(self.timings)

    def covers(self, schemes) -> bool:
        """Whether every named scheme has a full set of op timings."""
        return all(
            name in self.timings
            and all(
                set(per_op) >= set(CALIBRATION_OPS)
                for per_op in self.timings[name].values()
            )
            for name in schemes
        )

    def is_stale(self, schemes=None) -> bool:
        """Whether this calibration should be recomputed rather than trusted.

        Stale means: schema version changed, measured on a different
        platform, or missing timings for a requested scheme.  A different
        source commit does *not* make it stale — kernel speed rarely changes
        commit to commit, and the stamp keeps the provenance either way.
        """
        if self.version != CALIBRATION_VERSION:
            return True
        fingerprint = platform_fingerprint()
        if {k: self.platform.get(k) for k in fingerprint} != fingerprint:
            return True
        if not self.sparsity_levels or not self.timings:
            return True
        return not self.covers(schemes if schemes is not None else [])

    # -- the cost model --------------------------------------------------------

    def nearest_level(self, sparsity: float) -> str:
        """The calibrated sparsity level closest to ``sparsity`` (as a key)."""
        best = min(self.sparsity_levels, key=lambda level: abs(level - sparsity))
        return _level_key(best)

    def op_seconds(self, scheme: str, op: str, sparsity: float) -> float:
        """Measured seconds per matrix element for one kernel of one scheme."""
        try:
            return self.timings[scheme][self.nearest_level(sparsity)][op]
        except KeyError:
            raise KeyError(
                f"calibration has no timing for scheme {scheme!r} op {op!r}; "
                f"recalibrate (covered schemes: {self.schemes()})"
            ) from None

    def expected_cost(
        self,
        scheme: str,
        *,
        workload: str,
        sparsity: float,
        bytes_per_element: float,
        disk_bandwidth: float = DEFAULT_DISK_BANDWIDTH,
    ) -> float:
        """Expected seconds per matrix element to run ``workload`` once.

        ``bytes × expected op mix``: the compute term sums the measured
        kernel times weighted by the workload's op mix; the I/O term charges
        the compressed bytes at ``disk_bandwidth``.  Lower is better.
        """
        if workload not in WORKLOAD_MIXES:
            raise ValueError(
                f"unknown workload {workload!r}; valid workloads: {list(WORKLOADS)}"
            )
        compute = sum(
            weight * self.op_seconds(scheme, op, sparsity)
            for op, weight in WORKLOAD_MIXES[workload].items()
        )
        return compute + bytes_per_element / disk_bandwidth

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "created_unix": self.created_unix,
            "git_commit": self.git_commit,
            "platform": dict(self.platform),
            "rows": self.rows,
            "cols": self.cols,
            "sparsity_levels": list(self.sparsity_levels),
            "timings": self.timings,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Calibration":
        return cls(
            version=int(payload["version"]),
            created_unix=float(payload["created_unix"]),
            git_commit=payload.get("git_commit"),
            platform=dict(payload.get("platform", {})),
            rows=int(payload["rows"]),
            cols=int(payload["cols"]),
            sparsity_levels=tuple(float(x) for x in payload["sparsity_levels"]),
            timings={
                scheme: {
                    level: {op: float(seconds) for op, seconds in per_op.items()}
                    for level, per_op in per_level.items()
                }
                for scheme, per_level in payload["timings"].items()
            },
        )

    def save(self, path: Path | str) -> Path:
        """Write the calibration as JSON (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Calibration | None":
        """Read a persisted calibration; ``None`` on a missing/corrupt file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
            return cls.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None


def calibration_path(directory: Path | str) -> Path:
    """Where a dataset directory keeps its calibration file."""
    return Path(directory) / CALIBRATION_NAME


def _time_scheme(
    scheme_name: str, batch: np.ndarray, repeats: int
) -> dict[str, float]:
    """Per-element seconds of every calibrated op for one scheme on one batch."""
    rows, cols = batch.shape
    elements = rows * cols
    compressed = get_scheme(scheme_name).compress(batch)
    figure8 = time_matrix_ops(compressed, cols, rows, m_width=8, repeats=repeats)
    seconds = {_FIGURE8_OPS[label]: value for label, value in figure8.items()}
    slice_index = np.arange(0, rows, max(1, rows // 16))
    seconds["row_slice"] = time_callable(
        lambda: compressed.row_slice(slice_index), repeats
    )
    seconds["decode"] = time_callable(compressed.to_dense, repeats)
    return {op: value / elements for op, value in seconds.items()}


def calibrate(
    schemes=None,
    *,
    rows: int = CALIBRATION_ROWS,
    cols: int = CALIBRATION_COLS,
    sparsity_levels=SPARSITY_LEVELS,
    repeats: int = 2,
    seed: int = 0,
) -> Calibration:
    """Time every scheme's kernels on synthetic batches; return the result.

    This is the one-time measurement pass.  It does not persist anything —
    :func:`ensure_calibration` handles caching and the on-disk file.
    """
    names = list(schemes) if schemes is not None else available_schemes()
    levels = tuple(float(level) for level in sparsity_levels)
    if not names:
        raise ValueError("at least one scheme is required")
    if not levels:
        raise ValueError("at least one sparsity level is required")
    timings: dict[str, dict[str, dict[str, float]]] = {}
    for index, level in enumerate(levels):
        batch = synthetic_batch(rows, cols, level, seed=seed + index)
        for name in names:
            timings.setdefault(name, {})[_level_key(level)] = _time_scheme(
                name, batch, repeats
            )
    return Calibration(
        version=CALIBRATION_VERSION,
        created_unix=time.time(),
        git_commit=current_git_commit(),
        platform={**platform_fingerprint(), "cpu_count": os.cpu_count()},
        rows=rows,
        cols=cols,
        sparsity_levels=levels,
        timings=timings,
    )


def ensure_calibration(
    directory: Path | str | None = None,
    schemes=None,
    *,
    refresh: bool = False,
    **calibrate_kwargs,
) -> Calibration:
    """A valid calibration for this machine, computed at most once.

    Resolution order: the on-disk ``calibration.json`` under ``directory``
    (if given), then the process-wide cache, then a fresh :func:`calibrate`
    pass.  A stale file (see :meth:`Calibration.is_stale`) is recomputed and
    overwritten; a valid cached calibration is copied down to a directory
    that lacks one, so the file always ends up next to the dataset.
    ``refresh=True`` forces a fresh pass.
    """
    global _PROCESS_CACHE
    names = list(schemes) if schemes is not None else available_schemes()
    path = calibration_path(directory) if directory is not None else None
    if not refresh:
        if path is not None and path.exists():
            loaded = Calibration.load(path)
            if loaded is not None and not loaded.is_stale(names):
                _PROCESS_CACHE = loaded
                return loaded
        cached = _PROCESS_CACHE
        if cached is not None and not cached.is_stale(names):
            if path is not None and not path.exists():
                cached.save(path)
            return cached
    calibration = calibrate(names, **calibrate_kwargs)
    if path is not None:
        calibration.save(path)
    _PROCESS_CACHE = calibration
    return calibration


def invalidate_cache() -> None:
    """Drop the process-wide calibration cache (test isolation helper)."""
    global _PROCESS_CACHE
    _PROCESS_CACHE = None


__all__ = [
    "CALIBRATION_NAME",
    "CALIBRATION_OPS",
    "CALIBRATION_VERSION",
    "Calibration",
    "DEFAULT_DISK_BANDWIDTH",
    "SPARSITY_LEVELS",
    "WORKLOADS",
    "WORKLOAD_MIXES",
    "calibrate",
    "calibration_path",
    "ensure_calibration",
    "invalidate_cache",
    "platform_fingerprint",
    "synthetic_batch",
]
