"""Structural validation of TOC encodings.

These checks are used by tests and by the failure-injection experiments:
they verify the invariants that the encoding algorithm guarantees, so that
corrupted or hand-built encodings are rejected with clear errors instead of
producing silently wrong arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.core.decode_tree import build_decode_tree
from repro.core.logical import LogicalEncoding
from repro.core.sparse import SparseEncodedTable


class EncodingError(ValueError):
    """Raised when an encoded artefact violates a structural invariant."""


def validate_sparse(table: SparseEncodedTable) -> None:
    """Validate a sparse-encoded table beyond the dataclass checks."""
    offsets = table.row_offsets
    if np.any(np.diff(offsets) < 0):
        raise EncodingError("row offsets must be non-decreasing")
    if table.values.size and np.any(table.values == 0.0):
        raise EncodingError("sparse encoding must not store zero values")
    for row in range(table.n_rows):
        cols, _ = table.row_pairs(row)
        if cols.size > 1 and np.any(np.diff(cols) <= 0):
            raise EncodingError(f"row {row} columns are not strictly increasing")


def validate_logical(encoding: LogicalEncoding) -> None:
    """Validate a logical encoding: code ranges, first-layer uniqueness, tree."""
    n_first = encoding.n_first_layer
    pairs = set(
        zip(encoding.first_layer_columns.tolist(), encoding.first_layer_values.tolist())
    )
    if len(pairs) != n_first:
        raise EncodingError("first layer contains duplicate pairs")
    if encoding.first_layer_values.size and np.any(encoding.first_layer_values == 0.0):
        raise EncodingError("first layer must not contain zero values")
    if encoding.first_layer_columns.size and (
        encoding.first_layer_columns.min() < 0
        or encoding.first_layer_columns.max() >= encoding.n_cols
    ):
        raise EncodingError("first-layer column index out of range")
    max_node = encoding.n_tree_nodes
    if encoding.codes.size and encoding.codes.max() > max_node:
        raise EncodingError(
            f"code {int(encoding.codes.max())} exceeds the number of tree nodes {max_node}"
        )
    # Rebuilding the decode tree runs its own structural validation.
    tree = build_decode_tree(encoding)
    tree.validate()
    # Every decoded row must have strictly increasing column indexes, which is
    # what "preserving tuple boundaries" means for the downstream kernels.
    from repro.core.ops import decode_to_sparse

    validate_sparse(decode_to_sparse(encoding, tree))


def validate_roundtrip(matrix: np.ndarray) -> None:
    """Assert that TOC encodes ``matrix`` losslessly (raises otherwise)."""
    from repro.core.toc import TOCMatrix

    toc = TOCMatrix.encode(matrix)
    decoded = toc.to_dense()
    if not np.array_equal(decoded, np.asarray(matrix, dtype=np.float64)):
        raise EncodingError("TOC round-trip is not lossless for the given matrix")
