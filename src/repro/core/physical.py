"""Physical encoding of the logical-encoding outputs (Section 3.2).

The arrays making up ``I`` and ``D`` are mostly small non-negative integers,
so they are bit-packed to their minimal byte width; the (float) values of the
first layer are dictionary-encoded with value indexing.  The physical layout
mirrors Figure 3 of the paper:

* ``D``: the concatenated tree-node indexes of all tuples, bit-packed, plus
  the bit-packed tuple start offsets;
* ``I``: the bit-packed column indexes, the bit-packed value indexes, and the
  array of unique values.

An alternative varint layout is provided for the "future work" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.bitpack.bitpacking import PackedIntArray, pack_integers
from repro.bitpack.value_index import ValueIndex, build_value_index
from repro.bitpack.varint import encode_varints
from repro.core.logical import LogicalEncoding

_MAGIC = b"TOC1"
_SHAPE_DTYPE = np.dtype("<u8")


@dataclass(frozen=True)
class PhysicalEncoding:
    """Physically encoded TOC output (self-describing byte blocks)."""

    first_layer_columns: PackedIntArray
    first_layer_values: ValueIndex
    codes: PackedIntArray
    row_offsets: PackedIntArray
    shape: tuple[int, int]

    @property
    def nbytes(self) -> int:
        """Total compressed size in bytes (what compression ratios measure)."""
        return (
            len(_MAGIC)
            + 2 * _SHAPE_DTYPE.itemsize
            + self.first_layer_columns.nbytes
            + self.first_layer_values.nbytes
            + self.codes.nbytes
            + self.row_offsets.nbytes
        )

    def to_bytes(self) -> bytes:
        """Serialise to a single byte string."""
        shape = np.array(self.shape, dtype=_SHAPE_DTYPE).tobytes()
        return (
            _MAGIC
            + shape
            + self.first_layer_columns.to_bytes()
            + self.first_layer_values.to_bytes()
            + self.codes.to_bytes()
            + self.row_offsets.to_bytes()
        )

    @classmethod
    def from_bytes(cls, raw) -> "PhysicalEncoding":
        """Parse a :class:`PhysicalEncoding` from bytes or any buffer object.

        Passing a memoryview (e.g. over an mmap'd shard) keeps every slice —
        including the packed payloads — zero-copy views of the source buffer.
        """
        raw = memoryview(raw)
        if raw[: len(_MAGIC)] != _MAGIC:
            raise ValueError("not a TOC physical encoding (bad magic)")
        offset = len(_MAGIC)
        shape_arr = np.frombuffer(
            raw[offset : offset + 2 * _SHAPE_DTYPE.itemsize], dtype=_SHAPE_DTYPE
        )
        shape = (int(shape_arr[0]), int(shape_arr[1]))
        offset += 2 * _SHAPE_DTYPE.itemsize
        first_cols, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        first_vals, consumed = ValueIndex.from_bytes(raw[offset:])
        offset += consumed
        codes, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        row_offsets, consumed = PackedIntArray.from_bytes(raw[offset:])
        offset += consumed
        return cls(
            first_layer_columns=first_cols,
            first_layer_values=first_vals,
            codes=codes,
            row_offsets=row_offsets,
            shape=shape,
        )


def physical_encode(encoding: LogicalEncoding) -> PhysicalEncoding:
    """Encode the logical output with bit packing + value indexing."""
    return PhysicalEncoding(
        first_layer_columns=pack_integers(encoding.first_layer_columns),
        first_layer_values=build_value_index(encoding.first_layer_values),
        codes=pack_integers(encoding.codes),
        row_offsets=pack_integers(encoding.row_offsets),
        shape=encoding.shape,
    )


def physical_decode(physical: PhysicalEncoding) -> LogicalEncoding:
    """Recover the logical encoding from its physical form."""
    return LogicalEncoding(
        first_layer_columns=physical.first_layer_columns.unpack(),
        first_layer_values=physical.first_layer_values.decode(),
        codes=physical.codes.unpack(),
        row_offsets=physical.row_offsets.unpack(),
        shape=physical.shape,
    )


def logical_nbytes(encoding: LogicalEncoding) -> int:
    """Size of the logical encoding if stored without physical encoding.

    Used by the ablation experiments (TOC_SPARSE_AND_LOGICAL): column indexes
    and codes as 4-byte integers, values as 8-byte doubles.
    """
    return int(
        encoding.first_layer_columns.size * 4
        + encoding.first_layer_values.size * 8
        + encoding.codes.size * 4
        + encoding.row_offsets.size * 4
    )


# ---------------------------------------------------------------------------
# Varint alternative layout (paper future work / ablation)
# ---------------------------------------------------------------------------


def physical_encode_varint(encoding: LogicalEncoding) -> bytes:
    """Encode the logical output with varints instead of fixed-width packing."""
    header = encode_varints(
        np.array(
            [
                encoding.shape[0],
                encoding.shape[1],
                encoding.first_layer_columns.size,
                encoding.codes.size,
            ],
            dtype=np.int64,
        )
    )
    values = build_value_index(encoding.first_layer_values)
    body = (
        encode_varints(encoding.first_layer_columns)
        + encode_varints(values.codes)
        + encode_varints(np.array([values.dictionary.size], dtype=np.int64))
        + values.dictionary.astype("<f8").tobytes()
        + encode_varints(encoding.codes)
        + encode_varints(encoding.row_offsets)
    )
    return header + body


def physical_decode_varint(raw) -> LogicalEncoding:
    """Inverse of :func:`physical_encode_varint` (accepts any buffer object)."""
    # Varints are self-delimiting, so decode sequentially tracking offsets.
    # Raw float bytes follow the varint segments, so tail validation is off:
    # each take() decodes exactly ``count`` values from the cursor onwards.
    raw = memoryview(raw)
    cursor = 0

    def take(count: int) -> np.ndarray:
        nonlocal cursor
        values, consumed = kernels.varint_decode(raw[cursor:], count, False)
        cursor += consumed
        return values

    n_rows, n_cols, n_first, n_codes = take(4).tolist()
    first_cols = take(n_first)
    value_codes = take(n_first)
    dict_size = int(take(1)[0])
    dictionary = np.frombuffer(raw[cursor : cursor + dict_size * 8], dtype="<f8").copy()
    cursor += dict_size * 8
    first_vals = dictionary[value_codes] if n_first else np.zeros(0, dtype=np.float64)
    codes = take(n_codes)
    row_offsets = take(n_rows + 1)
    return LogicalEncoding(
        first_layer_columns=first_cols,
        first_layer_values=first_vals,
        codes=codes,
        row_offsets=row_offsets,
        shape=(n_rows, n_cols),
    )


__all__ = [
    "PhysicalEncoding",
    "physical_encode",
    "physical_decode",
    "physical_encode_varint",
    "physical_decode_varint",
    "logical_nbytes",
]
