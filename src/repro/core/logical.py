"""Logical encoding — the prefix-tree encoding algorithm (Algorithm 1).

The sparse-encoded table is compressed by detecting sequences of
column-index:value pairs that repeat across rows.  Sequences are stored in a
prefix tree shared by all rows; each row is rewritten as a vector of indexes
pointing at prefix-tree nodes.  Only the encoded table ``D`` and the first
layer of the tree ``I`` need to be kept: the full tree can be rebuilt from
them (Algorithm 2, see :mod:`repro.core.decode_tree`).

The algorithm differs from textbook LZW in the ways Table 3 of the paper
lists: the input is the sparse-encoded table rather than a byte stream, the
compression unit is a whole pair rather than a byte, the dictionary is
initialised with the unique pairs of the batch, and row boundaries are
preserved because each tuple is encoded separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pairs import pair_key
from repro.core.prefix_tree import NOT_FOUND, ROOT_INDEX, PrefixTree
from repro.core.sparse import SparseEncodedTable


@dataclass(frozen=True)
class LogicalEncoding:
    """The output of logical encoding.

    Attributes
    ----------
    first_layer_columns, first_layer_values:
        The column indexes / values of the unique pairs that form the first
        layer of the prefix tree (``I`` in the paper).  Node ``i + 1`` of the
        tree stores pair ``(first_layer_columns[i], first_layer_values[i])``.
    codes:
        Flat array of prefix-tree node indexes for all rows (``D`` in the
        paper), row-major.
    row_offsets:
        ``row_offsets[i]:row_offsets[i + 1]`` slices out row ``i``'s codes.
    shape:
        Shape of the original dense matrix.
    """

    first_layer_columns: np.ndarray
    first_layer_values: np.ndarray
    codes: np.ndarray
    row_offsets: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        if self.first_layer_columns.size != self.first_layer_values.size:
            raise ValueError("first-layer columns and values must align")
        if self.row_offsets.size != self.shape[0] + 1:
            raise ValueError("row_offsets must have exactly one more entry than rows")
        if int(self.row_offsets[-1]) != self.codes.size:
            raise ValueError("row_offsets must end at the number of codes")
        if self.codes.size and self.codes.min() < 1:
            raise ValueError("codes must reference non-root tree nodes (index >= 1)")

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def n_first_layer(self) -> int:
        """Number of unique pairs, i.e. size of ``I``."""
        return int(self.first_layer_columns.size)

    @property
    def n_codes(self) -> int:
        """Total number of tree-node references in the encoded table ``D``."""
        return int(self.codes.size)

    @property
    def n_tree_nodes(self) -> int:
        """Number of non-root nodes in the rebuilt decoding tree ``C'``.

        Algorithm 1 adds one node per code except for the last code of each
        row, so ``|C'| = |I| + |D| - n_rows`` plus the root.
        """
        skipped = sum(
            1
            for row in range(self.n_rows)
            if int(self.row_offsets[row + 1]) > int(self.row_offsets[row])
        )
        return self.n_first_layer + self.n_codes - skipped

    def row_codes(self, row: int) -> np.ndarray:
        """Return the tree-node indexes encoding ``row``."""
        start, end = int(self.row_offsets[row]), int(self.row_offsets[row + 1])
        return self.codes[start:end]

    def iter_rows(self):
        """Yield the code vector of each row in order."""
        for row in range(self.n_rows):
            yield self.row_codes(row)


def prefix_tree_encode(table: SparseEncodedTable) -> tuple[LogicalEncoding, PrefixTree]:
    """Run Algorithm 1 on a sparse-encoded table.

    Returns the logical encoding (``I`` + ``D``) and the full prefix tree
    ``C`` built along the way (callers that only need the compressed output
    can discard the tree; it is returned for inspection and testing).
    """
    tree = PrefixTree()

    # Phase I: initialise the tree with every unique pair as a root child.
    pair_to_node: dict[tuple[int, float], int] = {}
    columns = table.columns
    values = table.values
    for col, val in zip(columns.tolist(), values.tolist()):
        key = pair_key(col, val)
        if key not in pair_to_node:
            pair_to_node[key] = tree.add_node(ROOT_INDEX, key)

    first_layer = tree.first_layer()
    first_cols = np.array([c for c, _ in first_layer], dtype=np.int64)
    first_vals = np.array([v for _, v in first_layer], dtype=np.float64)

    # Phase II: encode each tuple, extending the tree with every new
    # sequence discovered (one new node per emitted code except when the
    # match runs to the end of the tuple).
    codes: list[int] = []
    row_offsets = np.zeros(table.n_rows + 1, dtype=np.int64)
    for row in range(table.n_rows):
        start, end = int(table.row_offsets[row]), int(table.row_offsets[row + 1])
        row_cols = columns[start:end].tolist()
        row_vals = values[start:end].tolist()
        length = end - start
        i = 0
        while i < length:
            node, j = _longest_match_from_tree(row_cols, row_vals, i, tree)
            codes.append(node)
            if j < length:
                tree.add_node(node, pair_key(row_cols[j], row_vals[j]))
            i = j
        row_offsets[row + 1] = len(codes)

    encoding = LogicalEncoding(
        first_layer_columns=first_cols,
        first_layer_values=first_vals,
        codes=np.asarray(codes, dtype=np.int64),
        row_offsets=row_offsets,
        shape=table.shape,
    )
    return encoding, tree


def _longest_match_from_tree(
    row_cols: list[int], row_vals: list[float], start: int, tree: PrefixTree
) -> tuple[int, int]:
    """Find the longest tree sequence matching the tuple from ``start``.

    Returns ``(node, next_start)`` where ``node`` is the index of the deepest
    matching tree node and ``next_start`` is the position after the match.
    The match is always at least one pair long because phase I inserted every
    unique pair under the root.
    """
    length = len(row_cols)
    j = start
    candidate = tree.get_index(ROOT_INDEX, (row_cols[j], row_vals[j]))
    node = candidate
    while candidate != NOT_FOUND:
        node = candidate
        j += 1
        if j < length:
            candidate = tree.get_index(node, (row_cols[j], row_vals[j]))
        else:
            candidate = NOT_FOUND
    return node, j


def logical_decode(encoding: LogicalEncoding) -> SparseEncodedTable:
    """Rebuild the sparse-encoded table from a logical encoding.

    This is the decompression path; it is linear in the number of output
    pairs, mirroring LZW decoding.
    """
    from repro.core.decode_tree import build_decode_tree

    tree = build_decode_tree(encoding)
    columns: list[int] = []
    values: list[float] = []
    row_offsets = np.zeros(encoding.n_rows + 1, dtype=np.int64)
    for row in range(encoding.n_rows):
        for code in encoding.row_codes(row).tolist():
            seq_cols, seq_vals = tree.sequence(code)
            columns.extend(seq_cols)
            values.extend(seq_vals)
        row_offsets[row + 1] = len(columns)
    return SparseEncodedTable(
        columns=np.asarray(columns, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
        row_offsets=row_offsets,
        shape=encoding.shape,
    )
