"""The decoding prefix tree ``C'`` (Algorithm 2 of the paper).

``C'`` is a simplified variant of the encoding tree ``C``: every node keeps
its key and the index of its *parent*, but not of its children.  It can be
rebuilt from the logical-encoding outputs ``I`` and ``D`` alone by replaying
the same node-creation order that Algorithm 1 used, which is what makes it
unnecessary to ship the full tree with the compressed batch.

The tree is stored in struct-of-arrays form (parallel NumPy arrays indexed
by node id) so the compressed matrix kernels in :mod:`repro.core.ops` can
scan it without Python-object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.logical import LogicalEncoding


@dataclass(frozen=True)
class DecodeTree:
    """Struct-of-arrays decoding tree.

    Index 0 is the root and carries no key (its entries are zero-filled).
    For node ``i >= 1``:

    * ``key_columns[i]`` / ``key_values[i]`` — the pair stored at the node,
    * ``parents[i]`` — the parent node index,
    * ``first_columns[i]`` / ``first_values[i]`` — the first pair of the
      sequence the node represents (the ``F`` array of Algorithm 2),
    * ``depths[i]`` — length of that sequence.

    ``level_order`` / ``level_offsets`` group the non-root nodes by depth
    (``level_order[level_offsets[d-1]:level_offsets[d]]`` are the nodes at
    depth ``d``).  The compressed kernels use them to evaluate the
    parent-recurrences one level at a time with vectorised NumPy operations
    instead of a per-node Python loop.
    """

    key_columns: np.ndarray
    key_values: np.ndarray
    parents: np.ndarray
    first_columns: np.ndarray
    first_values: np.ndarray
    depths: np.ndarray
    level_order: np.ndarray | None = None
    level_offsets: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.level_order is None or self.level_offsets is None:
            order, offsets = _group_by_depth(self.depths)
            object.__setattr__(self, "level_order", order)
            object.__setattr__(self, "level_offsets", offsets)

    def __len__(self) -> int:
        return int(self.key_columns.size)

    @property
    def max_depth(self) -> int:
        """Length of the longest sequence stored in the tree."""
        return int(self.level_offsets.size - 1)

    def iter_levels(self, reverse: bool = False):
        """Yield the node-index array of each depth level (1..max_depth)."""
        depths = range(self.max_depth, 0, -1) if reverse else range(1, self.max_depth + 1)
        for depth in depths:
            yield self.level_order[self.level_offsets[depth - 1] : self.level_offsets[depth]]

    @property
    def n_nodes(self) -> int:
        """Number of nodes including the root."""
        return len(self)

    def sequence(self, index: int) -> tuple[list[int], list[float]]:
        """Return the pair sequence represented by node ``index`` (root→node)."""
        cols: list[int] = []
        vals: list[float] = []
        node = int(index)
        while node != 0:
            cols.append(int(self.key_columns[node]))
            vals.append(float(self.key_values[node]))
            node = int(self.parents[node])
        cols.reverse()
        vals.reverse()
        return cols, vals

    def validate(self) -> None:
        """Check structural invariants (parents precede children, root fixed)."""
        if self.parents[0] != 0:
            raise ValueError("the root must be its own parent")
        nodes = np.arange(1, len(self))
        if np.any(self.parents[1:] >= nodes):
            raise ValueError("every node's parent must have a smaller index")
        if np.any(self.parents < 0):
            raise ValueError("parent indexes must be non-negative")


def build_decode_tree(encoding: LogicalEncoding) -> DecodeTree:
    """Rebuild ``C'`` from ``I`` and ``D`` (Algorithm 2).

    Phase I seeds the tree with the first-layer pairs.  Phase II replays the
    encoded table: for every code except the last one of each row, a new node
    is appended whose parent is that code and whose key is the *first* pair of
    the sequence referenced by the following code — exactly how Algorithm 1
    grew the tree while encoding.

    The replay is evaluated with vectorised NumPy throughout: node creation
    order is a pure function of the code positions, and the two per-node
    recurrences (the ``F`` array of first pairs and the node depths) are
    resolved with pointer doubling over the parent array, which needs only
    ``O(log max_depth)`` vectorised passes instead of a per-code Python loop.
    """
    n_first = encoding.n_first_layer
    n_nodes = 1 + encoding.n_tree_nodes

    key_columns = np.zeros(n_nodes, dtype=np.int64)
    key_values = np.zeros(n_nodes, dtype=np.float64)
    parents = np.zeros(n_nodes, dtype=np.int64)
    first_columns = np.zeros(n_nodes, dtype=np.int64)
    first_values = np.zeros(n_nodes, dtype=np.float64)

    # Phase I: first-layer nodes 1..n_first.
    key_columns[1 : n_first + 1] = encoding.first_layer_columns
    key_values[1 : n_first + 1] = encoding.first_layer_values
    first_columns[1 : n_first + 1] = encoding.first_layer_columns
    first_values[1 : n_first + 1] = encoding.first_layer_values

    # Phase II: replay D.  A node is created at every code position except
    # the last position of each (non-empty) row, in scan order.
    codes = encoding.codes
    row_offsets = encoding.row_offsets
    if codes.size:
        lengths = np.diff(row_offsets)
        create_mask = np.ones(codes.size, dtype=bool)
        last_positions = row_offsets[1:][lengths > 0] - 1
        create_mask[last_positions] = False
        creating_positions = np.nonzero(create_mask)[0]

        parent_codes = codes[creating_positions]
        following_codes = codes[creating_positions + 1]
        new_ids = np.arange(n_first + 1, n_first + 1 + creating_positions.size, dtype=np.int64)
        if new_ids.size and new_ids[-1] != n_nodes - 1:
            raise AssertionError(
                f"decode-tree reconstruction produced {new_ids[-1]} nodes, expected {n_nodes - 1}"
            )
        parents[new_ids] = parent_codes

        # Resolve each node's depth-1 ancestor by pointer doubling: first-layer
        # nodes point at themselves, new nodes start at their parent.
        ancestors = np.arange(n_nodes, dtype=np.int64)
        ancestors[new_ids] = parent_codes
        while np.any(ancestors > n_first):
            ancestors = ancestors[ancestors]

        first_columns[1:] = encoding.first_layer_columns[ancestors[1:] - 1]
        first_values[1:] = encoding.first_layer_values[ancestors[1:] - 1]
        # A node's key is the first pair of the sequence referenced by the
        # *following* code (which may be the node itself — the LZW corner
        # case — handled naturally because ancestors are already resolved).
        key_columns[new_ids] = first_columns[following_codes]
        key_values[new_ids] = first_values[following_codes]

    depths = _depths_from_parents(parents)

    level_order, level_offsets = _group_by_depth(depths)
    tree = DecodeTree(
        key_columns=key_columns,
        key_values=key_values,
        parents=parents,
        first_columns=first_columns,
        first_values=first_values,
        depths=depths,
        level_order=level_order,
        level_offsets=level_offsets,
    )
    tree.validate()
    return tree


def _depths_from_parents(parents: np.ndarray) -> np.ndarray:
    """Depth of every node (root = 0) by walking all nodes towards the root.

    All nodes advance one parent step per iteration, so the loop runs
    ``max_depth`` times with fully vectorised body — cheap because sequence
    lengths (tree depths) are small even for large batches.
    """
    n_nodes = parents.size
    depths = np.zeros(n_nodes, dtype=np.int64)
    if n_nodes <= 1:
        return depths
    cursor = parents.copy()
    cursor[0] = 0
    active = np.arange(1, n_nodes, dtype=np.int64)
    while active.size:
        depths[active] += 1
        cursor_active = cursor[active]
        still_walking = cursor_active != 0
        active = active[still_walking]
        cursor[active] = parents[cursor[active]]
    return depths


def _group_by_depth(depths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return non-root node indexes sorted by depth plus per-depth offsets."""
    non_root = np.arange(1, depths.size, dtype=np.int64)
    if non_root.size == 0:
        return non_root, np.zeros(1, dtype=np.int64)
    node_depths = depths[non_root]
    order = non_root[np.argsort(node_depths, kind="stable")]
    max_depth = int(node_depths.max())
    counts = np.bincount(node_depths, minlength=max_depth + 1)[1:]
    offsets = np.zeros(max_depth + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets
