"""Optional numba-jitted kernels (feature flag: ``REPRO_KERNELS=numba``).

Importing this module never requires numba: when the package is absent,
:func:`available` returns False and the registry in :mod:`repro.kernels`
falls back to the NumPy backend.  When numba *is* present, the per-element
loops below compile to native code on first call and match the reference
semantics of :mod:`repro.kernels.python_backend` bit for bit.

The jitted cores return status codes instead of raising so the thin Python
wrappers own the (message-bearing) exceptions.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.python_backend import MAX_VARINT_BYTES

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError as _exc:  # pragma: no cover - the common case in CI
    _numba = None
    _IMPORT_ERROR = str(_exc)
else:  # pragma: no cover
    _IMPORT_ERROR = None


def available() -> bool:
    """True when numba imported successfully and the kernels can compile."""
    return _numba is not None


def unavailable_reason() -> str:
    return _IMPORT_ERROR or "numba is importable"


_STATUS_OK = 0
_STATUS_TRUNCATED = 1
_STATUS_OVERLONG = 2
_STATUS_SHORT = 3


if _numba is not None:  # pragma: no cover - compiled only where numba exists

    @_numba.njit(cache=True)
    def _encode_core(arr):
        n = arr.shape[0]
        total = 0
        for i in range(n):
            value = arr[i]
            width = 1
            value >>= 7
            while value != 0:
                width += 1
                value >>= 7
            total += width
        out = np.empty(total, np.uint8)
        pos = 0
        for i in range(n):
            value = arr[i]
            while True:
                byte = np.uint8(value & 0x7F)
                value >>= 7
                if value != 0:
                    out[pos] = byte | 0x80
                else:
                    out[pos] = byte
                    pos += 1
                    break
                pos += 1
        return out

    @_numba.njit(cache=True)
    def _decode_core(buf, count, check_whole_buffer, max_bytes):
        n = buf.shape[0]
        n_complete = 0
        for i in range(n):
            if buf[i] & 0x80 == 0:
                n_complete += 1
        if count < 0:
            n_values = n_complete
        else:
            if n_complete < count:
                if n > 0 and (buf[n - 1] & 0x80) != 0:
                    return np.empty(0, np.int64), 0, _STATUS_TRUNCATED
                return np.empty(0, np.int64), 0, _STATUS_SHORT
            n_values = count
        if check_whole_buffer and n > 0 and (buf[n - 1] & 0x80) != 0:
            return np.empty(0, np.int64), 0, _STATUS_TRUNCATED
        out = np.empty(n_values, np.int64)
        value = np.int64(0)
        shift = 0
        length = 0
        decoded = 0
        consumed = 0
        for i in range(n):
            byte = buf[i]
            value |= np.int64(byte & 0x7F) << shift
            length += 1
            if length > max_bytes:
                return np.empty(0, np.int64), 0, _STATUS_OVERLONG
            if byte & 0x80:
                shift += 7
            else:
                if decoded < n_values:
                    out[decoded] = value
                    consumed = i + 1
                decoded += 1
                value = np.int64(0)
                shift = 0
                length = 0
                if decoded >= n_values and not check_whole_buffer:
                    break
        return out, consumed, _STATUS_OK

    @_numba.njit(cache=True)
    def _row_slice_core(codes, row_offsets, key_columns, key_values, parents, index, n_cols):
        out = np.zeros((index.shape[0], n_cols), np.float64)
        for out_row in range(index.shape[0]):
            row = index[out_row]
            for position in range(row_offsets[row], row_offsets[row + 1]):
                node = codes[position]
                while node != 0:
                    out[out_row, key_columns[node]] = key_values[node]
                    node = parents[node]
        return out


def varint_encode(values) -> bytes:  # pragma: no cover - needs numba
    arr = np.ascontiguousarray(np.asarray(values, dtype=np.int64).ravel())
    if arr.size == 0:
        return b""
    if arr.min() < 0:
        raise ValueError("varint encoding requires non-negative integers")
    return _encode_core(arr).tobytes()


def varint_decode(
    raw, count: int | None = None, validate_tail: bool = True
):  # pragma: no cover - needs numba
    if count == 0 and not validate_tail:
        return np.zeros(0, dtype=np.int64), 0
    buf = np.ascontiguousarray(np.frombuffer(raw, dtype=np.uint8))
    check_whole_buffer = count is None or validate_tail
    values, consumed, status = _decode_core(
        buf, -1 if count is None else int(count), check_whole_buffer, MAX_VARINT_BYTES
    )
    if status == _STATUS_TRUNCATED:
        raise ValueError("truncated varint stream")
    if status == _STATUS_OVERLONG:
        raise ValueError(f"varint longer than {MAX_VARINT_BYTES} bytes overflows int64")
    if status == _STATUS_SHORT:
        n_complete = int(np.count_nonzero((buf & 0x80) == 0))
        raise ValueError(f"expected {count} varints, decoded only {n_complete}")
    return values, int(consumed)


def toc_row_slice(
    codes, row_offsets, key_columns, key_values, parents, index, n_cols
):  # pragma: no cover - needs numba
    index = np.ascontiguousarray(np.asarray(index, dtype=np.int64).ravel())
    return _row_slice_core(
        np.ascontiguousarray(np.asarray(codes, dtype=np.int64)),
        np.ascontiguousarray(np.asarray(row_offsets, dtype=np.int64)),
        np.ascontiguousarray(np.asarray(key_columns, dtype=np.int64)),
        np.ascontiguousarray(np.asarray(key_values, dtype=np.float64)),
        np.ascontiguousarray(np.asarray(parents, dtype=np.int64)),
        index,
        int(n_cols),
    )


def vi_gather(dictionary, codes):  # pragma: no cover - needs numba
    # Fancy indexing is already a native gather; jitting adds nothing here.
    return np.asarray(dictionary)[np.asarray(codes)]
