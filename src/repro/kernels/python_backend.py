"""Pure-Python reference kernels.

These are the original per-element loops the accelerated backends replace.
They stay byte-for-byte compatible with the vectorized implementations and
serve two purposes: the equivalence baseline for the property tests in
``tests/kernels/`` and the "before" timings of ``benchmarks/bench_kernels.py``
(whose CI gate asserts the accelerated kernels actually beat them).

Every function here matches the signature of its ``numpy_backend`` twin; the
registry in :mod:`repro.kernels` dispatches between them.
"""

from __future__ import annotations

import numpy as np

#: Longest varint either backend accepts: 9 payload bytes cover the 63 bits
#: of a non-negative ``int64`` — anything longer cannot round-trip.
MAX_VARINT_BYTES = 9


def varint_encode(values: np.ndarray) -> bytes:
    """LEB128-encode non-negative int64 values, one Python int at a time."""
    arr = np.asarray(values, dtype=np.int64).ravel()
    if arr.size and arr.min() < 0:
        raise ValueError("varint encoding requires non-negative integers")
    out = bytearray()
    for value in arr.tolist():
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def varint_decode(
    raw, count: int | None = None, validate_tail: bool = True
) -> tuple[np.ndarray, int]:
    """Decode varints byte by byte; return ``(values, bytes_consumed)``.

    With ``validate_tail=True`` the *whole* buffer must consist of complete
    varints: a stream that ends mid-value raises even when ``count`` values
    were already decoded — a truncated tail means the writer was
    interrupted, and silently accepting it would let corruption ride along
    behind a satisfied ``count``.  ``validate_tail=False`` is for decoding a
    varint prefix of a heterogeneous buffer (the TOC varint layout follows
    code streams with raw float bytes): decoding stops at the ``count``-th
    value and the bytes after it are never inspected.
    """
    buf = bytes(raw)
    if count == 0 and not validate_tail:
        return np.zeros(0, dtype=np.int64), 0
    values: list[int] = []
    consumed = 0
    current = 0
    shift = 0
    length = 0
    for position, byte in enumerate(buf):
        current |= (byte & 0x7F) << shift
        length += 1
        if length > MAX_VARINT_BYTES:
            raise ValueError(f"varint longer than {MAX_VARINT_BYTES} bytes overflows int64")
        if byte & 0x80:
            shift += 7
        else:
            values.append(current)
            if count is None or len(values) <= count:
                consumed = position + 1
            current = 0
            shift = 0
            length = 0
            if count is not None and len(values) == count and not validate_tail:
                break
    if shift != 0:
        raise ValueError("truncated varint stream")
    if count is not None:
        if len(values) < count:
            raise ValueError(f"expected {count} varints, decoded only {len(values)}")
        values = values[:count]
    return np.asarray(values, dtype=np.int64), consumed


def toc_row_slice(
    codes: np.ndarray,
    row_offsets: np.ndarray,
    key_columns: np.ndarray,
    key_values: np.ndarray,
    parents: np.ndarray,
    index: np.ndarray,
    n_cols: int,
) -> np.ndarray:
    """Decode the selected rows of a TOC logical encoding, one pair at a time.

    For every requested row, walk each of its codes up the decode tree and
    write the key pairs into the dense output — the reference the vectorized
    gather is tested against.
    """
    out = np.zeros((len(index), int(n_cols)), dtype=np.float64)
    for out_row, row in enumerate(np.asarray(index, dtype=np.intp).tolist()):
        start, end = int(row_offsets[row]), int(row_offsets[row + 1])
        for code in codes[start:end].tolist():
            node = int(code)
            while node != 0:
                out[out_row, int(key_columns[node])] = float(key_values[node])
                node = int(parents[node])
    return out


def vi_gather(dictionary: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Materialise a value-indexed array by looking codes up one at a time."""
    return np.asarray(
        [float(dictionary[int(code)]) for code in np.asarray(codes).ravel().tolist()],
        dtype=np.float64,
    ).reshape(np.asarray(codes).shape)
