"""Kernel backend registry: pure-Python reference, NumPy, and optional numba.

The hot code-walk kernels (varint encode/decode, TOC ``row_slice``, value-
index gather) have three interchangeable implementations:

* ``python`` — the original per-element loops (reference semantics, slow);
* ``numpy``  — vectorized whole-array passes; always available, the default;
* ``numba``  — jitted loops behind a feature flag; requires the optional
  ``numba`` package and silently falls back to ``numpy`` when it is absent.

Select a backend with the ``REPRO_KERNELS`` environment variable or
:func:`set_backend`; :func:`use_backend` scopes a selection to a ``with``
block (tests compare backends this way).  Every dispatched call increments
the ``kernels.calls{op=...,backend=...}`` obs counter, so a metrics snapshot
shows exactly which backend served each op; a requested-but-unavailable
backend increments ``kernels.fallbacks{requested=...}`` once per resolution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.kernels.python_backend import MAX_VARINT_BYTES
from repro.obs import metrics as _metrics

#: Recognised backend names, in reference → fastest order.
BACKENDS = ("python", "numpy", "numba")

#: Used when ``REPRO_KERNELS`` is unset, and the fallback for ``numba``.
DEFAULT_BACKEND = "numpy"

ENV_VAR = "REPRO_KERNELS"

_active_name: str | None = None
_active_module = None
_counter_cache: dict[tuple[str, str], object] = {}


def _import_backend(name: str):
    """Import the backend module for ``name``; ImportError if unavailable."""
    if name == "python":
        from repro.kernels import python_backend

        return python_backend
    if name == "numpy":
        from repro.kernels import numpy_backend

        return numpy_backend
    if name == "numba":
        from repro.kernels import numba_backend

        if not numba_backend.available():
            raise ImportError(
                f"numba backend unavailable: {numba_backend.unavailable_reason()}"
            )
        return numba_backend
    raise ValueError(f"unknown kernel backend {name!r}; expected one of {BACKENDS}")


def set_backend(name: str, *, strict: bool = False) -> str:
    """Activate a kernel backend; returns the name actually activated.

    An unavailable backend (numba not installed) falls back to
    ``DEFAULT_BACKEND`` unless ``strict=True`` — the feature flag must never
    turn a working deployment into an ImportError.
    """
    global _active_name, _active_module
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; expected one of {BACKENDS}")
    try:
        module = _import_backend(name)
        resolved = name
    except ImportError:
        if strict:
            raise
        _metrics.counter("kernels.fallbacks", requested=name).inc()
        module = _import_backend(DEFAULT_BACKEND)
        resolved = DEFAULT_BACKEND
    _active_name = resolved
    _active_module = module
    return resolved


def active_backend() -> str:
    """The name of the backend currently serving kernel calls."""
    _resolve()
    return _active_name  # type: ignore[return-value]


@contextmanager
def use_backend(name: str, *, strict: bool = False):
    """Temporarily switch backends inside a ``with`` block."""
    _resolve()
    previous = _active_name
    set_backend(name, strict=strict)
    try:
        yield active_backend()
    finally:
        set_backend(previous)  # type: ignore[arg-type]


def _resolve():
    """Lazily activate the backend named by ``REPRO_KERNELS`` (once).

    An unrecognised env value falls back to the default (with a
    ``kernels.fallbacks`` count) instead of raising: deployment config must
    degrade, not explode the first encode.  :func:`set_backend` stays strict
    about unknown names — a typo in code is a bug.
    """
    global _active_name, _active_module
    if _active_module is None:
        requested = os.environ.get(ENV_VAR, DEFAULT_BACKEND) or DEFAULT_BACKEND
        try:
            set_backend(requested)
        except ValueError:
            _metrics.counter("kernels.fallbacks", requested=requested.strip().lower()).inc()
            set_backend(DEFAULT_BACKEND)
    return _active_module


def _count(op: str) -> None:
    key = (op, _active_name or DEFAULT_BACKEND)
    counter = _counter_cache.get(key)
    if counter is None:
        counter = _metrics.counter("kernels.calls", op=op, backend=key[1])
        _counter_cache[key] = counter
    counter.inc()


# -- dispatched kernel surface ---------------------------------------------------


def varint_encode(values) -> bytes:
    """LEB128-encode non-negative int64 values via the active backend."""
    module = _resolve()
    _count("varint_encode")
    return module.varint_encode(values)


def varint_decode(raw, count: int | None = None, validate_tail: bool = True):
    """Decode ``(values, bytes_consumed)`` via the active backend.

    See :func:`repro.kernels.python_backend.varint_decode` for the
    ``count``/``validate_tail`` semantics every backend implements.
    """
    module = _resolve()
    _count("varint_decode")
    return module.varint_decode(raw, count, validate_tail)


def toc_row_slice(codes, row_offsets, key_columns, key_values, parents, index, n_cols):
    """Decode only the selected rows of a TOC encoding to a dense block."""
    module = _resolve()
    _count("toc_row_slice")
    return module.toc_row_slice(
        codes, row_offsets, key_columns, key_values, parents, index, n_cols
    )


def vi_gather(dictionary, codes):
    """Batched value-index decode (``dictionary[codes]``) via the backend."""
    module = _resolve()
    _count("vi_gather")
    return module.vi_gather(dictionary, codes)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "MAX_VARINT_BYTES",
    "active_backend",
    "set_backend",
    "toc_row_slice",
    "use_backend",
    "varint_decode",
    "varint_encode",
    "vi_gather",
]
