"""Vectorized NumPy kernels — the always-available accelerated backend.

Each kernel replaces a per-element Python loop with whole-array NumPy
passes:

* varint encode/decode — a vectorized continuation-bit scan over the byte
  stream (terminator positions locate every value; at most nine whole-array
  passes assemble the 7-bit groups) instead of one Python int per byte;
* ``toc_row_slice`` — gathers only the *selected* rows' code runs and walks
  them up the decode tree in lockstep, ``O(selected codes × depth)`` instead
  of the ``O(rows × n_rows)`` selection-matrix multiply;
* ``vi_gather`` — one fancy-indexing gather through the value dictionary.

Results are bit-identical to :mod:`repro.kernels.python_backend` (enforced
by the property tests in ``tests/kernels/``).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.python_backend import MAX_VARINT_BYTES

#: Thresholds for the byte width of each varint: value >= _WIDTH_EDGES[k]
#: needs at least k + 2 payload bytes.
_WIDTH_EDGES = [1 << (7 * k) for k in range(1, MAX_VARINT_BYTES)]


def varint_encode(values: np.ndarray) -> bytes:
    """LEB128-encode non-negative int64 values in whole-array passes."""
    arr = np.asarray(values, dtype=np.int64).ravel()
    if arr.size == 0:
        return b""
    if arr.min() < 0:
        raise ValueError("varint encoding requires non-negative integers")
    # Bytes per value: one 7-bit group per value, plus one per crossed edge.
    widths = np.ones(arr.size, dtype=np.int64)
    for edge in _WIDTH_EDGES:
        widths += arr >= edge
    total = int(widths.sum())
    starts = np.zeros(arr.size, dtype=np.int64)
    np.cumsum(widths[:-1], out=starts[1:])
    # Emit one 7-bit group position per pass (at most nine), over only the
    # values that still have a byte at that position; a byte that is not its
    # varint's last carries the continuation bit.
    out = np.empty(total, dtype=np.uint8)
    active = np.arange(arr.size, dtype=np.int64)
    for group in range(MAX_VARINT_BYTES):
        byte = (arr[active] >> (7 * group)) & 0x7F
        continuing = widths[active] > group + 1
        out[starts[active] + group] = byte | (continuing << 7)
        active = active[continuing]
        if active.size == 0:
            break
    return out.tobytes()


def varint_decode(
    raw, count: int | None = None, validate_tail: bool = True
) -> tuple[np.ndarray, int]:
    """Vectorized continuation-bit scan; see the python backend for semantics."""
    buf = np.frombuffer(raw, dtype=np.uint8)
    terminators = np.flatnonzero((buf & 0x80) == 0)
    n_complete = int(terminators.size)
    if count is None:
        n_values = n_complete
        check_whole_buffer = True
    else:
        if n_complete < count:
            if buf.size and buf[-1] & 0x80:
                raise ValueError("truncated varint stream")
            raise ValueError(f"expected {count} varints, decoded only {n_complete}")
        n_values = count
        check_whole_buffer = validate_tail
    if check_whole_buffer:
        if buf.size and buf[-1] & 0x80:
            raise ValueError("truncated varint stream")
        checked_ends = terminators
    else:
        checked_ends = terminators[:n_values]
    # Per-varint byte lengths over everything being validated.
    if checked_ends.size:
        checked_lengths = np.diff(checked_ends, prepend=np.int64(-1))
        if int(checked_lengths.max()) > MAX_VARINT_BYTES:
            raise ValueError(
                f"varint longer than {MAX_VARINT_BYTES} bytes overflows int64"
            )
    if n_values == 0:
        return np.zeros(0, dtype=np.int64), 0
    ends = terminators[:n_values]
    consumed = int(ends[n_values - 1]) + 1
    # Start byte of each decoded varint.
    starts = np.zeros(n_values, dtype=np.int64)
    starts[1:] = ends[: n_values - 1] + 1
    lengths = ends - starts + 1
    # Assemble values one 7-bit group position at a time: at most
    # MAX_VARINT_BYTES vectorized passes, each over only the varints that
    # still have a byte at that position (the active set shrinks fast — most
    # code-stream varints are one or two bytes).  Gathers stay in uint8 and
    # widen only the shrinking active set.
    payload = buf[:consumed] & 0x7F
    values = payload[starts].astype(np.int64)
    active = np.flatnonzero(lengths > 1)
    for group in range(1, MAX_VARINT_BYTES):
        if active.size == 0:
            break
        values[active] |= payload[starts[active] + group].astype(np.int64) << (7 * group)
        active = active[lengths[active] > group + 1]
    return values, consumed


def toc_row_slice(
    codes: np.ndarray,
    row_offsets: np.ndarray,
    key_columns: np.ndarray,
    key_values: np.ndarray,
    parents: np.ndarray,
    index: np.ndarray,
    n_cols: int,
) -> np.ndarray:
    """Decode only the selected rows' code runs through the decode tree.

    Gathers the selected rows' codes with one CSR-style range concatenation,
    then walks *all* gathered codes up the tree in lockstep (one vectorized
    step per tree level), scattering each level's key pairs straight into
    the dense output.  Work is proportional to the selected rows' codes and
    their sequence lengths — never to ``n_rows`` or the full code stream.
    """
    index = np.asarray(index, dtype=np.intp).ravel()
    out = np.zeros((index.size, int(n_cols)), dtype=np.float64)
    if index.size == 0 or codes.size == 0:
        return out
    starts = row_offsets[index]
    counts = row_offsets[index + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return out
    out_rows = np.repeat(np.arange(index.size, dtype=np.int64), counts)
    range_offsets = np.zeros(index.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=range_offsets[1:])
    positions = np.arange(total, dtype=np.int64) - range_offsets[out_rows] + starts[out_rows]
    current = codes[positions].copy()
    # Lockstep tree walk: every gathered code emits its node's key pair and
    # steps to its parent; a code retires when it reaches the root.  Within
    # one row the pairs of different codes touch distinct columns, so the
    # scatter below never collides.
    active = current != 0
    rows_active = out_rows
    while active.any():
        if not active.all():
            current = current[active]
            rows_active = rows_active[active]
        out[rows_active, key_columns[current]] = key_values[current]
        current = parents[current]
        active = current != 0
    return out


def vi_gather(dictionary: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Batched value-index decode: one fancy-indexing pass."""
    return dictionary[codes]
