"""Figure 7 — compression ratios on large mini-batches (up to full-batch BGD).

Timed kernel: TOC encoding of progressively larger batches.  The ratio-vs-
fraction series is printed at the end.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig7
from repro.bench.reporting import format_series
from repro.bench.workloads import minibatch_for
from repro.compression.registry import get_scheme

FRACTIONS = (0.1, 0.5, 1.0)
TOTAL_ROWS = 1500


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_toc_encode_large_batch(benchmark, fraction):
    batch = minibatch_for("census", max(1, int(TOTAL_ROWS * fraction)), seed=0)
    factory = get_scheme("TOC")
    result = benchmark(factory.compress, batch)
    benchmark.extra_info["rows"] = batch.shape[0]
    benchmark.extra_info["compression_ratio"] = result.compression_ratio()


def test_report_figure7_series(benchmark, capsys):
    results = benchmark.pedantic(
        run_fig7,
        kwargs=dict(
            fractions=(0.05, 0.1, 0.25, 0.5, 1.0),
            datasets=("census", "kdd99"),
            total_rows=TOTAL_ROWS,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for dataset, per_scheme in results.items():
            fractions = list(next(iter(per_scheme.values())).keys())
            series = {name: [vals[f] for f in fractions] for name, vals in per_scheme.items()}
            print(
                format_series(
                    f"Figure 7 — {dataset} large mini-batches", "fraction of rows", fractions, series
                )
            )
            print()
    # TOC's ratio keeps improving with batch size (the BGD-potential claim).
    census = results["census"]["TOC"]
    assert census[1.0] >= census[0.05]
