"""Measured-cost advisor vs the flat decode penalty, end to end.

The flat advisor ranks schemes by compression ratio with a guessed 0.25
penalty for decode-only schemes — a rule that systematically mis-picks where
Figure 8 says kernel costs diverge (TOC's ``row_slice`` runs orders of
magnitude slower than DEN's on moderately-sparse data, yet the flat rule
picks TOC there on ratio alone).  This bench builds a mixed-sparsity dataset
(moderately-sparse census batches next to dense noise), runs both advisors
over it, and then *measures* one epoch of each workload over each advisor's
picks.

The acceptance gate, per workload (``train`` and ``serve``): the calibrated
pick's measured epoch time must not exceed the flat-penalty pick's (small
tolerance for timer noise when the picks differ; epoch times are memoised
per distinct pick-vector, so identical picks compare exactly equal).  The
calibration round-trip — persist, reload, identical recommendation — is
asserted on the way.  Results land in ``BENCH_advisor.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import time_callable, write_bench_json
from repro.bench.workloads import minibatch_for
from repro.compression.registry import get_scheme
from repro.core.advisor import recommend_scheme
from repro.core.calibration import Calibration, calibration_path, ensure_calibration

N_CENSUS_BATCHES = 3
N_DENSE_BATCHES = 3
BATCH_ROWS = 200
#: Slack for scheduler noise when the two advisors picked different schemes;
#: identical pick-vectors share one memoised measurement and compare exactly.
TOLERANCE = 1.10
WORKLOADS_UNDER_TEST = ("train", "serve")
EPOCH_REPEATS = 3


@pytest.fixture(scope="module")
def mixed_batches() -> list[np.ndarray]:
    """Moderately-sparse census batches interleaved with dense noise."""
    rng = np.random.default_rng(11)
    batches = [
        minibatch_for("census", BATCH_ROWS, seed=seed) for seed in range(N_CENSUS_BATCHES)
    ]
    for _ in range(N_DENSE_BATCHES):
        batches.append(rng.normal(size=(BATCH_ROWS, 40)))
    return batches


@pytest.fixture(scope="module")
def calibration(tmp_path_factory):
    """One measured calibration, persisted and reloaded through its file."""
    directory = tmp_path_factory.mktemp("advisor-bench")
    fresh = ensure_calibration(directory)
    reloaded = Calibration.load(calibration_path(directory))
    assert reloaded is not None and not reloaded.is_stale(fresh.schemes())
    return reloaded


def _epoch_seconds(batches, picks, workload: str) -> float:
    """Measured seconds for one ``workload`` pass over the picked schemes."""
    compressed = [get_scheme(name).compress(batch) for name, batch in zip(picks, batches)]
    if workload == "train":
        rng = np.random.default_rng(0)
        rights = [rng.normal(size=(c.shape[1], 8)) for c in compressed]
        lefts = [rng.normal(size=(8, c.shape[0])) for c in compressed]

        def epoch():
            for matrix, right, left in zip(compressed, rights, lefts):
                matrix.matmat(right)
                matrix.rmatmat(left)
    else:  # serve: scattered point lookups
        lookup = np.arange(0, BATCH_ROWS, BATCH_ROWS // 32)

        def epoch():
            for matrix in compressed:
                matrix.row_slice(lookup)

    return time_callable(epoch, repeats=EPOCH_REPEATS)


def test_calibrated_picks_beat_flat_penalty_picks(bench_json, mixed_batches, calibration):
    """The gate: measured-cost advice must not lose to the flat 0.25 guess."""
    flat_picks = tuple(recommend_scheme(batch).best.name for batch in mixed_batches)
    epoch_cache: dict[tuple, float] = {}

    def measured(picks, workload):
        key = (picks, workload)
        if key not in epoch_cache:
            epoch_cache[key] = _epoch_seconds(mixed_batches, picks, workload)
        return epoch_cache[key]

    rows = []
    for workload in WORKLOADS_UNDER_TEST:
        calibrated_picks = tuple(
            recommend_scheme(batch, workload=workload, calibration=calibration).best.name
            for batch in mixed_batches
        )
        # Round-trip acceptance: the reloaded file is the calibration used
        # above; a second pass over it must reproduce the picks exactly.
        assert calibrated_picks == tuple(
            recommend_scheme(batch, workload=workload, calibration=calibration).best.name
            for batch in mixed_batches
        )
        flat_seconds = measured(flat_picks, workload)
        calibrated_seconds = measured(calibrated_picks, workload)
        row = {
            "workload": workload,
            "flat_picks": list(flat_picks),
            "calibrated_picks": list(calibrated_picks),
            "picks_differ": calibrated_picks != flat_picks,
            "flat_epoch_seconds": flat_seconds,
            "calibrated_epoch_seconds": calibrated_seconds,
            "speedup": flat_seconds / calibrated_seconds if calibrated_seconds else 1.0,
        }
        rows.append(row)
        bench_json("advisor", **row)
        print(
            f"\n{workload}: flat {flat_seconds * 1e3:.3f}ms {list(flat_picks)} vs "
            f"calibrated {calibrated_seconds * 1e3:.3f}ms {list(calibrated_picks)}"
        )
        assert calibrated_seconds <= flat_seconds * TOLERANCE, (
            f"calibrated {workload} pick {calibrated_picks} measured slower than "
            f"flat pick {flat_picks}: {calibrated_seconds:.6f}s vs {flat_seconds:.6f}s"
        )

    path = write_bench_json("advisor", rows)
    print(f"wrote advisor comparison to {path}")
