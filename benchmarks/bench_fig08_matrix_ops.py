"""Figure 8 — matrix-operation runtimes on compressed 250-row mini-batches.

Every (scheme, operation, dataset) cell of Figure 8 is a pytest-benchmark
case; the shape assertions at the end check the orderings the paper reports
(direct-execution schemes orders of magnitude faster than the byte-block
compressors on sparse-safe ops, TOC competitive on the multiplication ops).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BATCH_ROWS, BENCH_DATASETS
from repro.bench.runner import time_matrix_ops
from repro.compression.registry import get_scheme

SCHEMES = ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC")
M_WIDTH = 20


def _vectors(batch):
    rng = np.random.default_rng(0)
    return {
        "v_right": rng.normal(size=batch.shape[1]),
        "v_left": rng.normal(size=batch.shape[0]),
        "m_right": rng.normal(size=(batch.shape[1], M_WIDTH)),
        "m_left": rng.normal(size=(M_WIDTH, batch.shape[0])),
    }


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_scalar_multiply(benchmark, compressed_batches, dataset, scheme):
    compressed = compressed_batches[dataset][scheme]
    benchmark(compressed.scale, 2.0)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_matrix_times_vector(benchmark, compressed_batches, bench_batches, dataset, scheme):
    compressed = compressed_batches[dataset][scheme]
    v = _vectors(bench_batches[dataset])["v_right"]
    benchmark(compressed.matvec, v)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_vector_times_matrix(benchmark, compressed_batches, bench_batches, dataset, scheme):
    compressed = compressed_batches[dataset][scheme]
    v = _vectors(bench_batches[dataset])["v_left"]
    benchmark(compressed.rmatvec, v)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_matrix_times_matrix(benchmark, compressed_batches, bench_batches, dataset, scheme):
    compressed = compressed_batches[dataset][scheme]
    m = _vectors(bench_batches[dataset])["m_right"]
    benchmark(compressed.matmat, m)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_uncompressed_matrix_times_matrix(benchmark, compressed_batches, bench_batches, dataset, scheme):
    compressed = compressed_batches[dataset][scheme]
    m = _vectors(bench_batches[dataset])["m_left"]
    benchmark(compressed.rmatmat, m)


def test_report_figure8_shape(benchmark, capsys):
    """Print the per-dataset op-runtime table and check the headline orderings."""
    from repro.bench.reporting import format_table
    from repro.bench.workloads import minibatch_for

    dataset = "census"
    batch = minibatch_for(dataset, BENCH_BATCH_ROWS, seed=0)

    def measure():
        table = {}
        for scheme in SCHEMES:
            compressed = get_scheme(scheme).compress(batch)
            table[scheme] = {
                op: seconds * 1e6
                for op, seconds in time_matrix_ops(
                    compressed, batch.shape[1], batch.shape[0], m_width=M_WIDTH, repeats=3
                ).items()
            }
        return table

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(f"Figure 8 — {dataset} (microseconds)", rows, ["A*c", "A*v", "A*M", "v*A", "M*A"], "{:.1f}"))
        print()
    # Sparse-safe scaling: value-indexed schemes and TOC touch only their
    # dictionaries, so they beat the byte-block compressors by a wide margin.
    assert rows["TOC"]["A*c"] < rows["Gzip"]["A*c"] / 10
    assert rows["CVI"]["A*c"] < rows["Gzip"]["A*c"] / 10
    # Right/left multiplication: TOC avoids the full-batch decompression the
    # byte-block schemes pay.  (Against Gzip the margin on this small profile
    # is thin in Python — zlib inflate is C — so v*A is checked against the
    # fast byte compressor; see EXPERIMENTS.md for the Figure 8 divergences.)
    assert rows["TOC"]["A*v"] < rows["Gzip"]["A*v"]
    assert rows["TOC"]["v*A"] < rows["Snappy"]["v*A"]
