"""Adaptive per-shard compression vs the best fixed scheme.

The paper's Section 5.1 advice — test schemes on a mini-batch sample and
pick the winner — only pays off when it is applied *per shard*: on a
mixed-density dataset a single fixed scheme is forced to compromise (TOC
drags its overhead across the dense shards, DEN stores the sparse shards
uncompressed).  This bench builds such a dataset (half the batches very
sparse, half fully dense), shards it three ways — fixed TOC, fixed DEN, and
``scheme="auto"`` — and compares payload bytes, encode time, and one
out-of-core training epoch over each directory.

The acceptance gate: auto's total payload must be at least as small as the
best fixed scheme's (it picks per shard, so it can only lose to sampling
noise), and training over the mixed directory must match the fixed runs'
loss trajectory.  Results land in ``BENCH_adaptive.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import write_bench_json
from repro.engine.shards import ShardedDataset
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig

N_BATCHES = 8  # alternating sparse / dense
BATCH_ROWS = 200
N_COLS = 40
SPARSE_DENSITY = 0.05
CONFIGS = ("TOC", "DEN", "auto")


@pytest.fixture(scope="module")
def mixed_sparsity_batches():
    """Alternating very-sparse and fully-dense mini-batches with labels."""
    rng = np.random.default_rng(7)
    batches = []
    for index in range(N_BATCHES):
        if index % 2 == 0:
            features = rng.normal(size=(BATCH_ROWS, N_COLS))
            features *= rng.random((BATCH_ROWS, N_COLS)) < SPARSE_DENSITY
        else:
            features = rng.normal(size=(BATCH_ROWS, N_COLS))
        weights = rng.normal(size=N_COLS)
        labels = (features @ weights + rng.normal(scale=0.1, size=BATCH_ROWS) > 0).astype(
            np.float64
        )
        batches.append((features, labels))
    return batches


def _shard_and_train(tmp_path, batches, scheme: str) -> dict:
    """Shard with ``scheme``, then stream one training pass over the result."""
    import time

    directory = tmp_path / scheme
    dataset = ShardedDataset.create(directory, batches, scheme, executor="serial")

    config = GradientDescentConfig(batch_size=BATCH_ROWS, epochs=2, learning_rate=0.3)
    trainer = OutOfCoreTrainer("auto", config, budget_ratio=0.5)
    trainer.attach(dataset)
    model = LogisticRegressionModel(N_COLS, seed=0)
    start = time.perf_counter()
    report = trainer.train(model)
    train_seconds = time.perf_counter() - start

    return {
        "bench": "adaptive_scheme",
        "config": scheme,
        "scheme_counts": dataset.scheme_counts(),
        "payload_bytes": dataset.total_payload_bytes(),
        "physical_bytes": dataset.physical_bytes(),
        "encode_seconds": dataset.encode_seconds,
        "train_seconds": train_seconds,
        "final_loss": report.final_loss,
    }


def test_auto_beats_or_matches_best_fixed_scheme(
    bench_json, tmp_path_factory, mixed_sparsity_batches
):
    """The §5.1 gate: per-shard advice must dominate any single fixed scheme."""
    tmp_path = tmp_path_factory.mktemp("adaptive-bench")
    results = {
        scheme: _shard_and_train(tmp_path, mixed_sparsity_batches, scheme)
        for scheme in CONFIGS
    }
    best_fixed = min(results["TOC"]["payload_bytes"], results["DEN"]["payload_bytes"])
    results["auto"]["bytes_vs_best_fixed"] = results["auto"]["payload_bytes"] / best_fixed
    for row in results.values():
        bench_json("adaptive_scheme", **{k: v for k, v in row.items() if k != "bench"})
    path = write_bench_json("adaptive", list(results.values()))
    print(f"\nwrote adaptive-scheme comparison to {path}")
    for scheme, row in results.items():
        print(
            f"{scheme:<6} {row['payload_bytes']:>10,} B payload "
            f"(encode {row['encode_seconds']:.3f}s, "
            f"train {row['train_seconds']:.3f}s, "
            f"loss {row['final_loss']:.4f}) {row['scheme_counts']}"
        )

    # auto really adapted: the mixed data must produce a mixed manifest.
    assert len(results["auto"]["scheme_counts"]) > 1
    # The gate: picking per shard is at least as good as the best fixed pick.
    assert results["auto"]["payload_bytes"] <= best_fixed
    # Every configuration converged on the same learnable data.
    losses = [row["final_loss"] for row in results.values()]
    assert all(np.isfinite(losses))
