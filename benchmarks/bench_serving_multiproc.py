"""Multi-process serving benchmarks: scale-out throughput and load-shedding.

The cluster tier claims two things worth gating on:

* **scale-out** — N worker processes decode on N cores, so cluster
  throughput should beat a single worker on a multi-core box (the GIL
  serialises decode inside one process).  On a single-core runner the
  speedup cannot materialise, so the ``>= 1.5x`` assertion is gated on
  ``os.cpu_count()`` (same precedent as ``bench_ooc_engine``) — the numbers
  are still recorded for the trajectory;
* **bounded overload behaviour** — when offered load exceeds capacity the
  service must fail the excess *fast* with explicit errors (no hangs, no
  unbounded queueing) while the accepted requests' tail latency stays
  bounded by the deadline.

Every run writes ``BENCH_serving_multiproc.json`` (plus session-level
``bench_json`` rows) so ``repro bench-report`` tracks the trajectory.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.bench.runner import write_bench_json
from repro.cluster import DEADLINE_GRACE_SECONDS, ClusterError, ClusterService
from repro.data.registry import DATASET_PROFILES
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig

ROWS = 600
BATCH_SIZE = 150
REQUESTS = 600
CLIENTS = 8

#: Worker counts compared by the scale-out leg.
SINGLE = 1
MULTI = min(4, max(2, os.cpu_count() or 2))

#: Saturation leg: a deliberately tiny cluster driven far past capacity.
SATURATION_DEADLINE = 2.0
SATURATION_CLIENTS = 16
SATURATION_REQUESTS = 400


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    """Train out-of-core once and publish a checkpoint to serve from."""
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=3)
    config = GradientDescentConfig(batch_size=BATCH_SIZE, epochs=2, learning_rate=0.3)
    trainer = OutOfCoreTrainer("TOC", config, budget_ratio=2.0, executor="serial")
    model = LogisticRegressionModel(features.shape[1], seed=0)
    shard_dir = tmp_path_factory.mktemp("multiproc-shards")
    registry_dir = tmp_path_factory.mktemp("multiproc-registry")
    trainer.fit(model, features, labels, shard_dir, checkpoint_to=registry_dir)

    rng = np.random.default_rng(0)
    hot = rng.choice(ROWS, size=ROWS // 5, replace=False)
    workload = np.where(
        rng.random(REQUESTS) < 0.8,
        rng.choice(hot, size=REQUESTS),
        rng.integers(0, ROWS, size=REQUESTS),
    )
    return registry_dir, shard_dir, workload


def _measure_cluster(registry_dir, shard_dir, workload, workers: int) -> dict:
    """Closed-loop throughput through a cluster of ``workers`` processes."""
    with ClusterService(
        registry_dir, shard_dir=shard_dir, workers=workers, backlog=64
    ) as cluster:
        cluster.predict_many(range(ROWS))  # warm every worker-side decode path
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as clients:
            list(clients.map(cluster.predict, workload))
        wall = time.perf_counter() - start
    return {
        "bench": "serving_multiproc",
        "leg": "scaleout",
        "workers": workers,
        "requests": len(workload),
        "clients": CLIENTS,
        "cpu_count": os.cpu_count(),
        "wall_seconds": wall,
        "throughput_rps": len(workload) / wall,
    }


def test_multiworker_scaleout(bench_json, published):
    """1 vs N workers over identical traffic; speedup gated on core count."""
    registry_dir, shard_dir, workload = published
    single = _measure_cluster(registry_dir, shard_dir, workload, SINGLE)
    multi = _measure_cluster(registry_dir, shard_dir, workload, MULTI)
    multi["speedup_vs_single"] = multi["throughput_rps"] / single["throughput_rps"]
    for row in (single, multi):
        bench_json(
            "serving_multiproc",
            **{key: value for key, value in row.items() if key != "bench"},
        )
    path = write_bench_json("serving_multiproc", [single, multi])
    print(f"\nwrote multi-process serving comparison to {path}")
    print(
        f"{SINGLE} worker  {single['throughput_rps']:>9,.0f} req/s\n"
        f"{MULTI} workers {multi['throughput_rps']:>9,.0f} req/s "
        f"(speedup {multi['speedup_vs_single']:.2f}x on "
        f"{os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core machine: multi-worker speedup not expected")
    assert multi["speedup_vs_single"] >= 1.5, (
        f"{MULTI} workers only {multi['speedup_vs_single']:.2f}x a single "
        f"worker on a {os.cpu_count()}-core machine — noisy runner?"
    )


def test_saturation_sheds_fast_and_bounds_accepted_tail(bench_json, published):
    """2x overload: excess fails fast with explicit errors, accepted p99 bounded."""
    registry_dir, shard_dir, workload = published
    accepted: list[float] = []
    shed: list[float] = []

    with ClusterService(
        registry_dir,
        shard_dir=shard_dir,
        workers=1,
        backlog=2,
        admission="reject",
        default_deadline=SATURATION_DEADLINE,
        cache_size=0,
    ) as cluster:
        cluster.predict_many(range(ROWS))  # warm

        def client(row_id) -> tuple[bool, float]:
            start = time.perf_counter()
            try:
                cluster.predict(int(row_id))
            except ClusterError:
                return False, time.perf_counter() - start
            return True, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=SATURATION_CLIENTS) as clients:
            outcomes = list(
                clients.map(client, workload[:SATURATION_REQUESTS])
            )
    for ok, seconds in outcomes:
        (accepted if ok else shed).append(seconds)

    assert accepted, "saturated cluster answered nothing"
    assert shed, "16 clients against backlog 2 never tripped admission"
    p99_accepted = float(np.percentile(accepted, 99))
    worst_shed = max(shed)
    row = {
        "bench": "serving_multiproc",
        "leg": "saturation",
        "clients": SATURATION_CLIENTS,
        "requests": SATURATION_REQUESTS,
        "accepted": len(accepted),
        "shed": len(shed),
        "deadline_seconds": SATURATION_DEADLINE,
        "p99_accepted_seconds": p99_accepted,
        "worst_shed_seconds": worst_shed,
    }
    bench_json(
        "serving_multiproc",
        **{key: value for key, value in row.items() if key != "bench"},
    )
    write_bench_json("serving_multiproc_saturation", [row])
    print(
        f"\nsaturation: {len(accepted)} accepted / {len(shed)} shed, "
        f"accepted p99 {p99_accepted * 1e3:.0f}ms, "
        f"worst shed {worst_shed * 1e3:.0f}ms"
    )
    # Shed requests failed fast — rejected at admission, far inside the
    # deadline — and accepted requests' tail stayed deadline-bounded.
    assert worst_shed < SATURATION_DEADLINE
    assert p99_accepted <= SATURATION_DEADLINE + DEADLINE_GRACE_SECONDS
