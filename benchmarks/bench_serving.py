"""Serving benchmarks: unbatched vs micro-batched vs cached backends.

The serving layer claims the paper's batching argument transfers to the read
side: coalescing concurrent single-row predict requests into mini-batches
amortizes the per-request overhead (queue hand-offs, decode, matvec) the
same way the MGD loop amortizes them during training.  This bench drives
identical closed-loop traffic through three service configurations —

* ``unbatched`` — ``max_batch_size=1``: every request is its own model call;
* ``microbatch`` — requests coalesce into mini-batches, no prediction cache;
* ``cached`` — micro-batching plus the prediction LRU absorbing hot keys —

and asserts the micro-batched backend beats the unbatched one.  Every run
writes ``BENCH_serving.json`` (plus the session-level ``bench_json`` rows)
so the serving trajectory accumulates alongside the training benches.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.bench.runner import write_bench_json
from repro.data.registry import DATASET_PROFILES
from repro.engine.trainer import OutOfCoreTrainer
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig
from repro.serve.service import PredictionService

ROWS = 1200
BATCH_SIZE = 150
REQUESTS = 1200
CLIENTS = 8
MEASURE_ROUNDS = 2  # best-of damps scheduler noise on shared runners
OVERHEAD_ROUNDS = 4  # interleaved instrumented/uninstrumented pairs

BACKENDS = {
    "unbatched": dict(max_batch_size=1, cache_size=0),
    "microbatch": dict(max_batch_size=64, cache_size=0),
    "cached": dict(max_batch_size=64, cache_size=512),
}


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """Train out-of-core once and publish a checkpoint to serve from."""
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=3)
    config = GradientDescentConfig(batch_size=BATCH_SIZE, epochs=2, learning_rate=0.3)
    trainer = OutOfCoreTrainer("TOC", config, budget_ratio=2.0, executor="serial")
    model = LogisticRegressionModel(features.shape[1], seed=0)
    shard_dir = tmp_path_factory.mktemp("serving-shards")
    registry_dir = tmp_path_factory.mktemp("serving-registry")
    trainer.fit(model, features, labels, shard_dir, checkpoint_to=registry_dir)

    rng = np.random.default_rng(0)
    hot = rng.choice(ROWS, size=ROWS // 5, replace=False)
    workload = np.where(
        rng.random(REQUESTS) < 0.8,
        rng.choice(hot, size=REQUESTS),
        rng.integers(0, ROWS, size=REQUESTS),
    )
    return registry_dir, len(trainer.dataset), workload


def _measure_backend(registry_dir, n_shards: int, workload: np.ndarray, backend: str) -> dict:
    """Best-of-N closed-loop throughput for one service configuration."""
    best = None
    for _ in range(MEASURE_ROUNDS):
        service, _ = PredictionService.from_registry(
            registry_dir,
            store_kwargs=dict(decoded_cache_rows=ROWS),
            **BACKENDS[backend],
        )
        with service:
            service.predict_ids(range(ROWS))  # warm the decoded rows
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENTS) as clients:
                list(clients.map(service.predict_id, workload))
            wall = time.perf_counter() - start
            row = {
                "bench": "serving",
                "backend": backend,
                "requests": REQUESTS,
                "clients": CLIENTS,
                "wall_seconds": wall,
                "throughput_rps": REQUESTS / wall,
                "model_calls": service.batcher_stats.batches,
                "mean_batch_size": service.batcher_stats.mean_batch_size,
                "cache_hit_rate": service.stats.cache_hit_rate,
                "mean_request_us": service.stats.mean_request_seconds * 1e6,
            }
        if best is None or row["throughput_rps"] > best["throughput_rps"]:
            best = row
    return best


def test_microbatching_beats_unbatched(bench_json, serving_setup):
    """The acceptance gate: micro-batched throughput strictly above unbatched."""
    registry_dir, n_shards, workload = serving_setup
    results = {
        backend: _measure_backend(registry_dir, n_shards, workload, backend)
        for backend in BACKENDS
    }
    for row in results.values():
        bench_json("serving", **{key: value for key, value in row.items() if key != "bench"})
    results["microbatch"]["speedup_vs_unbatched"] = (
        results["microbatch"]["throughput_rps"] / results["unbatched"]["throughput_rps"]
    )
    results["cached"]["speedup_vs_unbatched"] = (
        results["cached"]["throughput_rps"] / results["unbatched"]["throughput_rps"]
    )

    # Overhead gate: the same micro-batched traffic with every obs metric and
    # span turned into a no-op.  Instrumented throughput must stay within 5%
    # (counter increments share the lock the service already takes, and the
    # batcher observes once per batch, so the per-request cost is ~a few µs).
    # Measured as interleaved best-of pairs — scheduler noise between rounds
    # is far larger than the effect being measured, and interleaving keeps
    # warm-up / thermal drift from landing entirely on one side.
    instrumented_rps = uninstrumented_rps = 0.0
    try:
        for _ in range(OVERHEAD_ROUNDS):
            obs.set_enabled(True)
            row = _measure_backend(registry_dir, n_shards, workload, "microbatch")
            instrumented_rps = max(instrumented_rps, row["throughput_rps"])
            obs.set_enabled(False)
            row = _measure_backend(registry_dir, n_shards, workload, "microbatch")
            uninstrumented_rps = max(uninstrumented_rps, row["throughput_rps"])
    finally:
        obs.set_enabled(True)
    overhead_ratio = instrumented_rps / uninstrumented_rps
    results["instrumentation_overhead"] = {
        "bench": "serving",
        "backend": "instrumentation_overhead",
        "instrumented_rps": instrumented_rps,
        "uninstrumented_rps": uninstrumented_rps,
        "overhead_ratio": overhead_ratio,
    }

    path = write_bench_json("serving", list(results.values()))
    print(f"\nwrote serving comparison to {path}")
    for backend, row in results.items():
        if "throughput_rps" not in row:
            continue
        print(
            f"{backend:<11} {row['throughput_rps']:>9,.0f} req/s "
            f"(mean batch {row['mean_batch_size']:.1f}, "
            f"cache {row['cache_hit_rate']:.0%})"
        )
    print(
        f"instrumentation overhead: {instrumented_rps:,.0f} instrumented vs "
        f"{uninstrumented_rps:,.0f} uninstrumented req/s "
        f"(ratio {overhead_ratio:.3f})"
    )

    # Identical traffic, identical store: coalescing must win, and the
    # unbatched backend must genuinely not coalesce.
    assert results["unbatched"]["mean_batch_size"] == 1.0
    assert results["microbatch"]["mean_batch_size"] > 1.0
    assert results["microbatch"]["throughput_rps"] > results["unbatched"]["throughput_rps"]
    # The cache only absorbs traffic on the repeat-heavy workload.
    assert results["cached"]["cache_hit_rate"] > 0.3
    # Bounded-overhead gate (both sides best-of-N, so the ratio is stable).
    assert overhead_ratio >= 0.95, (
        f"instrumentation costs more than 5% of serving throughput "
        f"(ratio {overhead_ratio:.3f})"
    )


def test_bulk_path_beats_single_row(bench_json, serving_setup):
    """The no-queue bulk API is the upper bound on the single-row path."""
    registry_dir, n_shards, workload = serving_setup
    service, _ = PredictionService.from_registry(
        registry_dir, store_kwargs=dict(decoded_cache_rows=ROWS)
    )
    with service:
        service.predict_ids(range(ROWS))  # warm
        start = time.perf_counter()
        service.predict_ids(workload)
        bulk_wall = time.perf_counter() - start

        start = time.perf_counter()
        for row_id in workload[:200]:
            service.predict_id(row_id)
        single_wall = time.perf_counter() - start

    bulk_rps = len(workload) / bulk_wall
    single_rps = 200 / single_wall
    bench_json(
        "serving_bulk",
        bulk_throughput_rps=bulk_rps,
        single_row_throughput_rps=single_rps,
    )
    assert bulk_rps > single_rps
