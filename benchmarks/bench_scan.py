"""Predicate push-down scans vs decode-then-filter.

The scan executor answers equality / range predicates on value-indexed
shards by probing the value dictionary — ``k`` comparisons against the
dictionary plus one boolean gather through the codes — instead of
densifying ``rows x cols`` cells and masking.  This bench builds a
quantised dataset (small value domain, so CVI and DVI are at their best)
and a selective query (the regime push-down targets), shards the data once
per scheme, and times the scan executor with push-down against the
always-correct decode-then-filter fallback (``pushdown=False``) over the
same shard stream.

Acceptance gates (results land in ``BENCH_scan.json``):

* on the value-indexed schemes (CVI, DVI) the pushed-down selection must
  beat decode-then-filter;
* on *every* registered scheme the pushed-down results — selected rows,
  row ids, and aggregates — must be bit-identical to the dense NumPy
  reference (checked end-to-end through ``Dataset.scan``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Dataset
from repro.bench.runner import time_callable, write_bench_json
from repro.compression.registry import available_schemes, get_scheme
from repro.exec.scan import scan_shards

N_ROWS = 12_000
N_COLS = 60
BATCH_ROWS = 1_000
#: Tiny quantised value domain: the regime where dictionary probing wins.
VALUE_DOMAIN = (0.0, 0.25, 0.5, 1.0)
#: A selective conjunction (~2% of rows): the predicate answers come off the
#: dictionary and only the few matching rows are ever materialised.
WHERE = "c3 == 0.25 and c7 == 1.0"
AGG = "count,sum:c5,mean:c5,min:c3,max:c7"
REPEATS = 5
#: The schemes whose scan readers answer predicates without a dense decode;
#: these are the ones the bench requires to beat the fallback.
PUSHDOWN_SCHEMES = ("CVI", "DVI")


@pytest.fixture(scope="module")
def quantised_data():
    rng = np.random.default_rng(11)
    features = rng.choice(VALUE_DOMAIN, size=(N_ROWS, N_COLS), p=(0.55, 0.2, 0.15, 0.1))
    labels = rng.integers(0, 2, size=N_ROWS).astype(np.float64)
    return features, labels


def _reference(features: np.ndarray):
    mask = (features[:, 3] == 0.25) & (features[:, 7] == 1.0)
    kept = features[mask]
    aggregates = {
        "count": int(mask.sum()),
        "sum(c5)": float(kept[:, 5].sum()),
        "mean(c5)": float(kept[:, 5].mean()),
        "min(c3)": float(kept[:, 3].min()),
        "max(c7)": float(kept[:, 7].max()),
    }
    return mask, kept, aggregates


def test_pushdown_beats_decode_then_filter(bench_json, tmp_path_factory, quantised_data):
    """The PR-6 gate: dictionary probing must beat densify-and-mask."""
    features, labels = quantised_data
    mask, kept, ref_aggregates = _reference(features)
    tmp_path = tmp_path_factory.mktemp("scan-bench")

    records = []
    speedups = {}
    for scheme in available_schemes():
        dataset = Dataset.create(
            tmp_path / scheme,
            features,
            labels,
            scheme=scheme,
            batch_size=BATCH_ROWS,
            shuffle=False,
            executor="serial",
        )

        # Correctness before timing: end-to-end through Dataset.scan, both
        # strategies bit-identical to the dense reference.
        pushed = dataset.scan(where=WHERE)
        fallback = dataset.scan(where=WHERE, pushdown=False)
        assert np.array_equal(pushed.rows, kept), scheme
        assert np.array_equal(pushed.row_ids, np.flatnonzero(mask)), scheme
        assert np.array_equal(fallback.rows, kept), scheme
        agg = dataset.scan(where=WHERE, agg=AGG).aggregates
        assert agg["count"] == ref_aggregates["count"], scheme
        assert np.isclose(agg["sum(c5)"], ref_aggregates["sum(c5)"]), scheme
        assert np.isclose(agg["mean(c5)"], ref_aggregates["mean(c5)"]), scheme
        assert agg["min(c3)"] == ref_aggregates["min(c3)"], scheme
        assert agg["max(c7)"] == ref_aggregates["max(c7)"], scheme

        # Time the scan executor over pre-decoded shards: decode-then-filter
        # (pushdown=False densifies every shard, then masks) vs push-down,
        # with the payload-decode cost both strategies share factored out.
        shards = [
            (get_scheme(scheme).compress(features[start : start + BATCH_ROWS]), start)
            for start in range(0, N_ROWS, BATCH_ROWS)
        ]
        pushdown_seconds = time_callable(
            lambda: scan_shards(iter(shards), where=WHERE), REPEATS
        )
        fallback_seconds = time_callable(
            lambda: scan_shards(iter(shards), where=WHERE, pushdown=False), REPEATS
        )
        agg_seconds = time_callable(
            lambda: scan_shards(iter(shards), where=WHERE, agg=AGG), REPEATS
        )
        e2e_pushdown_seconds = time_callable(lambda: dataset.scan(where=WHERE), REPEATS)
        e2e_fallback_seconds = time_callable(
            lambda: dataset.scan(where=WHERE, pushdown=False), REPEATS
        )
        speedup = fallback_seconds / pushdown_seconds
        speedups[scheme] = speedup
        row = {
            "bench": "scan",
            "scheme": scheme,
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "selectivity": pushed.selectivity,
            "pushdown_shards": pushed.pushdown_shards,
            "fallback_shards": pushed.fallback_shards,
            "pushdown_seconds": pushdown_seconds,
            "fallback_seconds": fallback_seconds,
            "aggregate_seconds": agg_seconds,
            "e2e_pushdown_seconds": e2e_pushdown_seconds,
            "e2e_fallback_seconds": e2e_fallback_seconds,
            "speedup": speedup,
            "results_match_dense": True,
        }
        records.append(row)
        bench_json("scan", **{k: v for k, v in row.items() if k != "bench"})
        print(
            f"{scheme:<8} pushdown {pushdown_seconds * 1e3:8.2f} ms  "
            f"fallback {fallback_seconds * 1e3:8.2f} ms  "
            f"agg {agg_seconds * 1e3:8.2f} ms  {speedup:5.2f}x "
            f"({pushed.pushdown_shards} pushed / {pushed.fallback_shards} dense shards)"
        )

    path = write_bench_json("scan", records)
    print(f"\nwrote scan comparison to {path}")

    # The gate: on value-indexed shards the dictionary probe must win.
    for scheme in PUSHDOWN_SCHEMES:
        assert speedups[scheme] > 1.0, (
            f"pushed-down scan on {scheme} did not beat decode-then-filter "
            f"({speedups[scheme]:.2f}x)"
        )
