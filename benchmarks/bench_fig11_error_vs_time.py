"""Figure 11 — test error as a function of (simulated) wall-clock time."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig11
from repro.bench.reporting import format_table
from repro.bench.workloads import labeled_dataset
from repro.compression.registry import get_scheme
from repro.data.minibatch import split_minibatches
from repro.ml.models import FeedForwardNetwork
from repro.storage.bismarck import BismarckSession
from repro.storage.buffer_pool import BufferPool


@pytest.mark.parametrize("scheme", ("TOC", "DEN", "CSR"))
def test_one_epoch_through_storage(benchmark, scheme):
    features, labels = labeled_dataset("mnist", 500, seed=0)
    batches = split_minibatches(features, labels, batch_size=125, seed=0)
    session = BismarckSession(get_scheme(scheme), BufferPool(budget_bytes=10**9))
    session.load(batches)
    model = FeedForwardNetwork(features.shape[1], hidden_sizes=(32, 16), n_classes=10, seed=0)
    session.register_model(model)
    benchmark.pedantic(session.run_epoch, args=(model, 0.5), rounds=1, iterations=3)


def test_report_figure11(benchmark, capsys):
    def measure():
        small = run_fig11(
            dataset="mnist", n_rows=1000, test_rows=300, epochs=3, memory_pressure=True
        )
        big = run_fig11(
            dataset="mnist", n_rows=1000, test_rows=300, epochs=3, memory_pressure=False
        )
        return small, big

    small_ram, big_ram = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for title, result in (("small RAM", small_ram), ("big RAM", big_ram)):
            for label, curve in result["curves"].items():
                epochs = [str(i + 1) for i in range(len(curve["time"]))]
                rows = {
                    "time [s]": dict(zip(epochs, curve["time"])),
                    "error [%]": dict(zip(epochs, curve["error"])),
                }
                print(format_table(f"Figure 11 ({title}) — {label}", rows, epochs, "{:.3f}"))
            print()
    # Under memory pressure BismarckTOC finishes its epochs sooner than the
    # DEN reference (the spilling formats pay IO every epoch).
    toc_time = small_ram["curves"]["BismarckTOC"]["time"][-1]
    den_time = small_ram["curves"]["ReferenceDEN"]["time"][-1]
    assert toc_time < den_time
