"""Figure 9 — end-to-end MGD runtime as a function of the dataset size.

The crossover the figure shows (all schemes similar while everything fits in
memory, TOC pulling ahead once the uncompressed formats spill) is asserted
on the regenerated series.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_end_to_end, run_fig9
from repro.bench.reporting import format_series

ROW_COUNTS = (500, 1000, 2000)
SCHEMES = ("TOC", "DEN", "CSR", "CVI")


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_toc_training_scales_with_rows(benchmark, rows):
    benchmark.pedantic(
        run_end_to_end,
        kwargs=dict(
            dataset="imagenet",
            scheme_name="TOC",
            model_name="LR",
            n_rows=rows,
            memory_budget_bytes=10**9,
            epochs=1,
            batch_size=250,
        ),
        rounds=1,
        iterations=1,
    )


def test_report_figure9(benchmark, capsys):
    results = benchmark.pedantic(
        run_fig9,
        kwargs=dict(
            dataset="imagenet",
            schemes=SCHEMES,
            row_counts=ROW_COUNTS,
            models=("LR", "NN"),
            epochs=1,
            batch_size=250,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for model, per_scheme in results.items():
            series = {name: [vals[r] for r in ROW_COUNTS] for name, vals in per_scheme.items()}
            print(format_series(f"Figure 9 — {model} runtime (seconds)", "# rows", ROW_COUNTS, series))
            print()
    # At the largest size (where DEN/CSR spill but TOC fits) TOC wins on LR.
    lr = results["LR"]
    largest = ROW_COUNTS[-1]
    assert lr["TOC"][largest] < lr["DEN"][largest]
    assert lr["TOC"][largest] < lr["CSR"][largest]
