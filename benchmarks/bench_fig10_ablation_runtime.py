"""Figure 10 — ablation of TOC's encoding layers on end-to-end MGD runtime."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_end_to_end, run_fig10
from repro.bench.reporting import format_series

ROW_COUNTS = (500, 1000, 2000)
VARIANTS = ("DEN", "TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC")


@pytest.mark.parametrize("variant", VARIANTS)
def test_train_with_variant(benchmark, variant):
    benchmark.pedantic(
        run_end_to_end,
        kwargs=dict(
            dataset="imagenet",
            scheme_name=variant,
            model_name="LR",
            n_rows=500,
            memory_budget_bytes=10**9,
            epochs=1,
            batch_size=250,
        ),
        rounds=1,
        iterations=1,
    )


def test_report_figure10(benchmark, capsys):
    results = benchmark.pedantic(
        run_fig10,
        kwargs=dict(
            dataset="imagenet", row_counts=ROW_COUNTS, models=("LR",), epochs=1, batch_size=250
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for model, per_variant in results.items():
            series = {name: [vals[r] for r in ROW_COUNTS] for name, vals in per_variant.items()}
            print(format_series(f"Figure 10 — {model} TOC ablation (seconds)", "# rows", ROW_COUNTS, series))
            print()
    # At the largest size the fully-encoded variant (smallest footprint, least
    # IO under memory pressure) must not lose to the dense baseline.
    lr = results["LR"]
    largest = ROW_COUNTS[-1]
    assert lr["TOC"][largest] < lr["DEN"][largest]
