"""Figure 12 — compression / decompression runtimes of Snappy, Gzip, and TOC."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DATASETS
from repro.bench.experiments import run_fig12
from repro.bench.reporting import format_table
from repro.compression.registry import get_scheme

CODECS = ("Snappy", "Gzip", "TOC")


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("codec", CODECS)
def test_compress(benchmark, bench_batches, dataset, codec):
    batch = bench_batches[dataset]
    factory = get_scheme(codec)
    benchmark(factory.compress, batch)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("codec", CODECS)
def test_decompress(benchmark, compressed_batches, dataset, codec):
    compressed = compressed_batches[dataset][codec]
    benchmark(compressed.to_dense)


def test_report_figure12(benchmark, capsys):
    results = benchmark.pedantic(
        run_fig12, kwargs=dict(datasets=("census", "kdd99", "mnist")), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        for dataset, per_codec in results.items():
            rows = {
                codec: {k: v * 1e3 for k, v in timings.items()}
                for codec, timings in per_codec.items()
            }
            print(format_table(f"Figure 12 — {dataset} (milliseconds)", rows, ["compress", "decompress"], "{:.3f}"))
            print()
    # Shape claims.  The paper finds TOC compression between Snappy and Gzip
    # and TOC decompression faster than both; with NumPy kernels against C
    # zlib the decompression ordering does not survive on the smallest
    # profiles (see EXPERIMENTS.md), so the assertions use loose factors that
    # the paper's ordering would satisfy by a wide margin.
    for per_codec in results.values():
        assert per_codec["Snappy"]["compress"] < per_codec["Gzip"]["compress"]
        assert per_codec["TOC"]["compress"] < per_codec["Gzip"]["compress"] * 3
        assert per_codec["TOC"]["decompress"] < per_codec["Gzip"]["decompress"] * 10
