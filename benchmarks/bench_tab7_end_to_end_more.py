"""Table 7 — end-to-end MGD runtimes on the Census- and Kdd99-like profiles."""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_end_to_end, run_table7
from repro.bench.reporting import format_table

SMALL_ROWS = 500
LARGE_ROWS = 2000
BATCH = 250


@pytest.mark.parametrize("dataset", ("census", "kdd99"))
@pytest.mark.parametrize("scheme", ("TOC", "DEN", "CSR"))
def test_train_small_scale(benchmark, dataset, scheme):
    benchmark.pedantic(
        run_end_to_end,
        kwargs=dict(
            dataset=dataset,
            scheme_name=scheme,
            model_name="LR",
            n_rows=SMALL_ROWS,
            memory_budget_bytes=10**9,
            epochs=1,
            batch_size=BATCH,
        ),
        rounds=1,
        iterations=1,
    )


def test_report_table7(benchmark, capsys):
    results = benchmark.pedantic(
        run_table7,
        kwargs=dict(
            models=("NN", "LR", "SVM"),
            schemes=("TOC", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip"),
            small_rows=SMALL_ROWS,
            large_rows=LARGE_ROWS,
            epochs=1,
            batch_size=BATCH,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for key, per_scheme in results.items():
            print(format_table(f"Table 7 — {key} (seconds, simulated IO included)", per_scheme, ["NN", "LR", "SVM"], "{:.3f}"))
            print()
    for dataset in ("census", "kdd99"):
        large = results[f"{dataset}-large"]
        assert large["TOC"]["LR"] < large["DEN"]["LR"]
        assert large["TOC"]["SVM"] < large["DEN"]["SVM"]
