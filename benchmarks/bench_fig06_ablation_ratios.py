"""Figure 6 — ablation of TOC's encoding layers on compression ratios.

Timed kernel: encoding a 250-row batch with each TOC variant.  The ablation
series (sparse / sparse+logical / full) is printed at the end.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DATASETS
from repro.bench.experiments import run_fig6
from repro.bench.reporting import format_series
from repro.compression.registry import get_scheme

VARIANTS = ("TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC")


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_encode_variant(benchmark, bench_batches, dataset, variant):
    batch = bench_batches[dataset]
    factory = get_scheme(variant)
    result = benchmark(factory.compress, batch)
    benchmark.extra_info["compression_ratio"] = result.compression_ratio()
    benchmark.extra_info["dataset"] = dataset


def test_report_figure6_series(benchmark, capsys):
    results = benchmark.pedantic(
        run_fig6,
        kwargs=dict(batch_sizes=(50, 150, 250), datasets=("census", "kdd99")),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for dataset, per_variant in results.items():
            sizes = list(next(iter(per_variant.values())).keys())
            series = {name: [vals[s] for s in sizes] for name, vals in per_variant.items()}
            print(format_series(f"Figure 6 — {dataset} TOC ablation", "# rows", sizes, series))
            print()
    for dataset in results:
        per_variant = results[dataset]
        assert (
            per_variant["TOC"][250]
            > per_variant["TOC_SPARSE_AND_LOGICAL"][250]
            > per_variant["TOC_SPARSE"][250]
        )
