"""Out-of-core engine benchmarks: encode fan-out and end-to-end training.

Two questions the engine exists to answer:

1. how much wall-clock does the multi-worker encode pipeline save over
   serial encoding (``test_encode_*`` — the speedup shows up on multi-core
   machines; on a single core the process pool only adds overhead, so the
   speedup assertion is gated on ``os.cpu_count()``);
2. what does streaming shards through the buffer pool cost relative to the
   fully in-memory MGD loop (``test_train_*``).

Every case records a machine-readable row via ``bench_json`` (in CI the
session is named ``BENCH_ooc.json``).  The training rows carry the
per-shard scheme mix read off ``Dataset.stats()``, so a perf regression in
the trajectory can be attributed to a mix change, not just noticed.
"""

from __future__ import annotations

import os
import time
from collections import Counter

import pytest

from repro.api import Dataset
from repro.data.minibatch import split_minibatches
from repro.data.registry import DATASET_PROFILES
from repro.engine import OutOfCoreTrainer, encode_batches
from repro.ml.models import LogisticRegressionModel
from repro.ml.optimizer import GradientDescentConfig, MiniBatchGradientDescent
from repro.compression.registry import get_scheme

ROWS = 2000
BATCH_SIZE = 250
EPOCHS = 2


def _median_seconds(benchmark) -> float | None:
    """Median of the timed rounds, or None under ``--benchmark-disable``."""
    try:
        return float(benchmark.stats.stats.median)
    except AttributeError:
        return None


@pytest.fixture(scope="module")
def ooc_dataset():
    features, labels = DATASET_PROFILES["census"].classification(ROWS, seed=3)
    batches = split_minibatches(features, labels, batch_size=BATCH_SIZE, seed=0)
    return features, labels, batches


@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
def test_encode_executors(benchmark, bench_json, ooc_dataset, executor):
    """Time the shard encode pipeline under each executor kind."""
    _, _, batches = ooc_dataset
    feature_batches = [x for x, _ in batches]
    workers = 1 if executor == "serial" else max(2, os.cpu_count() or 2)

    encoded = benchmark.pedantic(
        encode_batches,
        args=(feature_batches, "TOC"),
        kwargs=dict(workers=workers, executor=executor),
        rounds=3,
        iterations=1,
    )
    bench_json(
        "encode",
        executor=executor,
        workers=workers,
        batches=len(feature_batches),
        payload_bytes=sum(e.nbytes for e in encoded),
        scheme_mix=dict(Counter(e.scheme for e in encoded)),
        median_seconds=_median_seconds(benchmark),
    )


def test_encode_parallel_speedup(bench_json, ooc_dataset):
    """Parallel encode beats serial when real cores are available."""
    _, _, batches = ooc_dataset
    feature_batches = [x for x, _ in batches] * 4  # enough work to amortise pool start-up
    workers = max(2, os.cpu_count() or 2)

    def timed(**kwargs):
        # Best of two rounds: damps scheduler noise on shared CI runners.
        samples = []
        for _ in range(2):
            start = time.perf_counter()
            encoded = encode_batches(feature_batches, "TOC", **kwargs)
            samples.append(time.perf_counter() - start)
        return encoded, min(samples)

    serial, serial_s = timed(executor="serial")
    parallel, parallel_s = timed(workers=workers, executor="process")

    assert [e.payload for e in serial] == [e.payload for e in parallel]
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    bench_json(
        "encode_speedup",
        workers=workers,
        cpu_count=os.cpu_count(),
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        speedup=speedup,
    )
    if (os.cpu_count() or 1) < 2:
        # The row above still lands in the JSON; only the expectation is
        # waived — a single core has no parallel win to measure.
        pytest.skip("single-core machine: parallel encode speedup not expected")
    if speedup <= 1.0:
        # xfail, not a hard assert: on a loaded shared runner the pool
        # start-up can eat the win for this small workload, and the smoke
        # job must not block unrelated PRs on scheduler noise.  The recorded
        # JSON row above still tracks the real speedup per run.
        pytest.xfail(
            f"parallel encode ({parallel_s:.3f}s with {workers} workers) not faster than "
            f"serial ({serial_s:.3f}s) on a {os.cpu_count()}-core machine — noisy runner?"
        )


def test_train_in_memory(benchmark, bench_json, ooc_dataset):
    """Baseline: the fully in-memory MGD loop over TOC batches."""
    features, labels, _ = ooc_dataset
    config = GradientDescentConfig(batch_size=BATCH_SIZE, epochs=EPOCHS, learning_rate=0.3)

    def run():
        model = LogisticRegressionModel(features.shape[1], seed=0)
        return MiniBatchGradientDescent(config).fit(model, features, labels, get_scheme("TOC"))

    history = benchmark.pedantic(run, rounds=3, iterations=1)
    bench_json(
        "train_in_memory",
        epochs=EPOCHS,
        final_loss=history.final_loss,
        median_seconds=_median_seconds(benchmark),
    )


@pytest.mark.parametrize("scheme", ("TOC", "auto"))
def test_train_out_of_core(benchmark, bench_json, ooc_dataset, tmp_path_factory, scheme):
    """The streaming engine: shard once, then train through the buffer pool.

    Runs once with a fixed TOC encode and once with per-shard ``"auto"``
    advice; both rows carry ``Dataset.stats()`` provenance (scheme mix,
    compression ratio) so the perf trajectory can attribute a regression to
    the mix changing under the advisor, not just to the kernels.
    """
    features, labels, _ = ooc_dataset
    config = GradientDescentConfig(batch_size=BATCH_SIZE, epochs=EPOCHS, learning_rate=0.3)
    dataset = Dataset.create(
        tmp_path_factory.mktemp(f"ooc-shards-{scheme}"),
        features,
        labels,
        scheme=scheme,
        batch_size=BATCH_SIZE,
        seed=0,
    )
    trainer = OutOfCoreTrainer("auto", config, budget_ratio=0.5)
    trainer.attach(dataset.sharded)

    def run():
        model = LogisticRegressionModel(features.shape[1], seed=0)
        return trainer.train(model)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    stats = dataset.stats()
    bench_json(
        "train_out_of_core",
        epochs=EPOCHS,
        requested_scheme=scheme,
        final_loss=report.final_loss,
        fits_in_memory=report.fits_in_memory,
        hit_rate=report.pool_stats.hit_rate,
        payload_bytes=report.total_payload_bytes,
        budget_bytes=report.budget_bytes,
        scheme_mix=stats.scheme_counts,
        compression_ratio=stats.compression_ratio,
        median_seconds=_median_seconds(benchmark),
    )
