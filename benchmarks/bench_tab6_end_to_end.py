"""Table 6 — end-to-end MGD runtimes (ImageNet- and Mnist-like profiles).

Timed kernel: one full training run per (scheme, model) cell at the small
scale.  The small+large-scale table — including the memory-pressure effect
that drives the paper's headline speedups — is regenerated and printed at
the end with shape assertions.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_end_to_end, run_table6
from repro.bench.reporting import format_table

SCHEMES = ("TOC", "DEN", "CSR", "CVI")
MODELS = ("LR", "NN")
SMALL_ROWS = 500
LARGE_ROWS = 2000
BATCH = 250


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("model", MODELS)
def test_train_small_scale(benchmark, scheme, model):
    benchmark.pedantic(
        run_end_to_end,
        kwargs=dict(
            dataset="imagenet",
            scheme_name=scheme,
            model_name=model,
            n_rows=SMALL_ROWS,
            memory_budget_bytes=10**9,
            epochs=1,
            batch_size=BATCH,
        ),
        rounds=1,
        iterations=1,
    )


def test_report_table6(benchmark, capsys):
    results = benchmark.pedantic(
        run_table6,
        kwargs=dict(
            datasets=("imagenet", "mnist"),
            models=("NN", "LR", "SVM"),
            schemes=("TOC", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip"),
            small_rows=SMALL_ROWS,
            large_rows=LARGE_ROWS,
            epochs=1,
            batch_size=BATCH,
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        for key, per_scheme in results.items():
            print(format_table(f"Table 6 — {key} (seconds, simulated IO included)", per_scheme, ["NN", "LR", "SVM"], "{:.3f}"))
            print()
    # Shape claims: at the large (spilling) scale TOC beats the uncompressed
    # and lightly-compressed formats on the linear models, where IO dominates.
    for dataset in ("imagenet", "mnist"):
        large = results[f"{dataset}-large"]
        assert large["TOC"]["LR"] < large["DEN"]["LR"]
        assert large["TOC"]["LR"] < large["CSR"]["LR"]
        assert large["TOC"]["SVM"] < large["DEN"]["SVM"]
