"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
figure-level summaries (the rows/series the paper prints) are produced once
per session by the experiment drivers and printed at the end of the run, so
``pytest benchmarks/ --benchmark-only`` both times the kernels and emits the
paper-shaped output.

Benchmarks can also record machine-readable results through the
``bench_json`` fixture; everything recorded during a session is written to
``BENCH_<name>.json`` when the session ends (name from ``$BENCH_JSON_NAME``,
default ``results``; location from ``$BENCH_JSON_DIR``, default the current
directory).  Each file is a per-run snapshot — archive them (CI uploads them
as artifacts) to accumulate the perf trajectory across commits.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.runner import write_bench_json
from repro.bench.workloads import minibatch_for
from repro.compression.registry import get_scheme

#: Records accumulated by the ``bench_json`` fixture during this session.
_BENCH_RECORDS: list[dict] = []

#: Datasets the micro-benchmarks parametrise over (kept to the moderate ones
#: plus one extreme profile each so a full run stays under a few minutes).
BENCH_DATASETS = ("census", "kdd99", "mnist", "rcv1")

#: Mini-batch size used by the paper's matrix-op and codec benchmarks.
BENCH_BATCH_ROWS = 250


@pytest.fixture(scope="session")
def bench_batches() -> dict[str, np.ndarray]:
    """One 250-row mini-batch per benchmark dataset."""
    return {name: minibatch_for(name, BENCH_BATCH_ROWS, seed=0) for name in BENCH_DATASETS}


@pytest.fixture()
def bench_json(request):
    """Record one machine-readable result row: ``bench_json(name, **fields)``."""

    def record(name: str, **fields) -> None:
        _BENCH_RECORDS.append({"bench": name, "test": request.node.nodeid, **fields})

    return record


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_RECORDS:
        name = os.environ.get("BENCH_JSON_NAME", "results")
        path = write_bench_json(name, _BENCH_RECORDS)
        print(f"\nwrote {len(_BENCH_RECORDS)} benchmark records to {path}")


@pytest.fixture(scope="session")
def compressed_batches(bench_batches):
    """Every benchmark dataset compressed with every scheme (built once)."""
    schemes = ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC")
    return {
        dataset: {name: get_scheme(name).compress(batch) for name in schemes}
        for dataset, batch in bench_batches.items()
    }
