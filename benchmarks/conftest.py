"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
figure-level summaries (the rows/series the paper prints) are produced once
per session by the experiment drivers and printed at the end of the run, so
``pytest benchmarks/ --benchmark-only`` both times the kernels and emits the
paper-shaped output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import minibatch_for
from repro.compression.registry import get_scheme

#: Datasets the micro-benchmarks parametrise over (kept to the moderate ones
#: plus one extreme profile each so a full run stays under a few minutes).
BENCH_DATASETS = ("census", "kdd99", "mnist", "rcv1")

#: Mini-batch size used by the paper's matrix-op and codec benchmarks.
BENCH_BATCH_ROWS = 250


@pytest.fixture(scope="session")
def bench_batches() -> dict[str, np.ndarray]:
    """One 250-row mini-batch per benchmark dataset."""
    return {name: minibatch_for(name, BENCH_BATCH_ROWS, seed=0) for name in BENCH_DATASETS}


@pytest.fixture(scope="session")
def compressed_batches(bench_batches):
    """Every benchmark dataset compressed with every scheme (built once)."""
    schemes = ("DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC")
    return {
        dataset: {name: get_scheme(name).compress(batch) for name in schemes}
        for dataset, batch in bench_batches.items()
    }
