"""Figure 5 — compression ratios of all schemes on 50-250 row mini-batches.

Timed kernel: compressing one 250-row mini-batch per scheme.  The ratio table
itself (the series plotted in Figure 5) is printed once at the end of the
module via the experiment driver.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_DATASETS
from repro.bench.experiments import run_fig5
from repro.bench.reporting import format_series
from repro.compression.registry import get_scheme

SCHEMES = ("CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC", "CLA")


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_compress_minibatch(benchmark, bench_batches, dataset, scheme):
    """Time compressing one 250-row mini-batch (the cost Figure 12 also reports)."""
    batch = bench_batches[dataset]
    factory = get_scheme(scheme)
    result = benchmark(factory.compress, batch)
    benchmark.extra_info["compression_ratio"] = result.compression_ratio()
    benchmark.extra_info["dataset"] = dataset


def test_report_figure5_series(benchmark, bench_json, capsys):
    """Regenerate and print the Figure 5 series (ratios vs mini-batch size)."""
    results = benchmark.pedantic(
        run_fig5,
        kwargs=dict(batch_sizes=(50, 100, 150, 200, 250), datasets=("census", "kdd99")),
        rounds=1,
        iterations=1,
    )
    for dataset, per_scheme in results.items():
        for scheme, ratios in per_scheme.items():
            bench_json("fig5_ratio", dataset=dataset, scheme=scheme,
                       ratios={str(k): v for k, v in ratios.items()})
    with capsys.disabled():
        print()
        for dataset, per_scheme in results.items():
            sizes = list(next(iter(per_scheme.values())).keys())
            series = {name: [vals[s] for s in sizes] for name, vals in per_scheme.items()}
            print(format_series(f"Figure 5 — {dataset} compression ratios", "# rows", sizes, series))
            print()
    # Shape assertions mirroring the paper's conclusions.
    for dataset in ("census", "kdd99"):
        per_scheme = results[dataset]
        assert per_scheme["TOC"][250] > per_scheme["CSR"][250]
        assert per_scheme["TOC"][250] > per_scheme["CVI"][250]
        assert per_scheme["TOC"][250] > per_scheme["CLA"][250]
