"""Native-speed kernel benchmarks: varint codec, TOC row_slice, mmap reads.

PR-9 replaced the per-element code-walk loops with vectorized NumPy kernels
(:mod:`repro.kernels`) and made shard reads zero-copy (mmap-backed
memoryviews).  This bench times the new paths against the baselines they
replaced and gates on the acceptance thresholds:

* batched varint decode must be **>= 5x** the pure-Python reference;
* TOC ``row_slice`` on a selective read (<= 10% of rows) must be **>= 3x**
  the old selection-matrix path (``M @ A`` via ``rmatmat``);
* zero-copy mmap reads must show **no regression** on a full-shard decode
  vs copying ``read_bytes`` reads.

Results land in ``BENCH_kernels.json`` for the CI perf-registry gate; raw
timings use direction-neutral ``*_secs`` names (reported, never cross-run
gated) while the ``*_speedup`` fields are direction-aware.  The per-test
``bench_json`` records carry only the speedups and workload constants: the
registry prefixes those metrics with the pytest nodeid, whose ``speedup``
token would otherwise mark raw timings higher-is-better and fail the gate
when a timing *improves*.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import Dataset
from repro.bench.runner import time_callable, write_bench_json
from repro.compression.registry import get_scheme
from repro.kernels import numpy_backend, python_backend
from repro.storage import mmapio

#: Code-stream sized like a large shard's varint segment.
N_VARINTS = 500_000
#: The selective-read regime the TOC gather targets.
SLICE_ROWS, SLICE_COLS, SLICE_SELECT = 8_000, 60, 400  # 5% of rows
REPEATS = 5

DECODE_SPEEDUP_FLOOR = 5.0
ROW_SLICE_SPEEDUP_FLOOR = 3.0
#: mmap must not regress; allow generous CI jitter either way.
MMAP_REGRESSION_CEILING = 1.5

#: Iterations per timing sample for sub-millisecond ops: a lone ~150 µs
#: gather is dominated by scheduler jitter, which made the measured speedup
#: swing ~3x between runs.
INNER_LOOPS = 20

#: Rows for ``BENCH_kernels.json``, written once when the module finishes.
_RECORDS: list[dict] = []


def _smoke_fields(record: dict) -> dict:
    """The cross-run-gated subset of a record (no ``bench``, no raw timings)."""
    return {
        k: v for k, v in record.items() if k != "bench" and not k.endswith("_secs")
    }


@pytest.fixture(scope="module", autouse=True)
def _write_kernel_bench_file():
    yield
    if _RECORDS:
        path = write_bench_json("kernels", _RECORDS)
        print(f"\nwrote kernel comparison to {path}")


def _mixed_magnitude_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Varint widths 1-9 bytes, weighted toward the small codes TOC emits."""
    widths = rng.choice([7, 14, 21, 35, 56, 63], size=n, p=(0.5, 0.25, 0.1, 0.08, 0.05, 0.02))
    return (rng.random(n) * (2.0 ** (widths - 1))).astype(np.int64)


def test_varint_batch_codec_speedup(bench_json):
    rng = np.random.default_rng(9)
    values = _mixed_magnitude_values(rng, N_VARINTS)
    raw = python_backend.varint_encode(values)
    assert numpy_backend.varint_encode(values) == raw  # equivalence before timing

    python_decode_secs = time_callable(lambda: python_backend.varint_decode(raw), REPEATS)
    numpy_decode_secs = time_callable(lambda: numpy_backend.varint_decode(raw), REPEATS)
    python_encode_secs = time_callable(lambda: python_backend.varint_encode(values), REPEATS)
    numpy_encode_secs = time_callable(lambda: numpy_backend.varint_encode(values), REPEATS)

    decode_speedup = python_decode_secs / numpy_decode_secs
    encode_speedup = python_encode_secs / numpy_encode_secs
    record = {
        "bench": "kernels",
        "op": "varint",
        "n_values": N_VARINTS,
        "stream_bytes": len(raw),
        "python_decode_secs": python_decode_secs,
        "numpy_decode_secs": numpy_decode_secs,
        "python_encode_secs": python_encode_secs,
        "numpy_encode_secs": numpy_encode_secs,
        "decode_speedup": decode_speedup,
        "encode_speedup": encode_speedup,
    }
    _RECORDS.append(record)
    bench_json("kernels", **_smoke_fields(record))
    print(
        f"varint decode {python_decode_secs * 1e3:8.2f} ms -> "
        f"{numpy_decode_secs * 1e3:8.2f} ms  ({decode_speedup:.1f}x), "
        f"encode {encode_speedup:.1f}x"
    )
    assert decode_speedup >= DECODE_SPEEDUP_FLOOR, (
        f"batched varint decode only {decode_speedup:.1f}x the python reference "
        f"(floor {DECODE_SPEEDUP_FLOOR}x)"
    )


def _selection_matrix_slice(compressed, index: np.ndarray) -> np.ndarray:
    """The pre-PR-9 generic row_slice: a selection ``M @ A`` via rmatmat."""
    selection = np.zeros((index.size, compressed.n_rows), dtype=np.float64)
    selection[np.arange(index.size), index] = 1.0
    return compressed.rmatmat(selection)


def test_toc_row_slice_speedup(bench_json):
    rng = np.random.default_rng(10)
    dense = np.round(rng.random((SLICE_ROWS, SLICE_COLS)), 1)
    dense[rng.random((SLICE_ROWS, SLICE_COLS)) >= 0.3] = 0.0
    compressed = get_scheme("TOC").compress(dense)
    index = rng.choice(SLICE_ROWS, size=SLICE_SELECT, replace=False)

    direct = compressed.row_slice(index)
    np.testing.assert_allclose(direct, dense[index])  # equivalence before timing
    np.testing.assert_allclose(_selection_matrix_slice(compressed, index), dense[index])

    def gather_loop():
        for _ in range(INNER_LOOPS):
            compressed.row_slice(index)

    direct_secs = time_callable(gather_loop, REPEATS) / INNER_LOOPS
    selection_secs = time_callable(
        lambda: _selection_matrix_slice(compressed, index), REPEATS
    )
    speedup = selection_secs / direct_secs
    record = {
        "bench": "kernels",
        "op": "toc_row_slice",
        "n_rows": SLICE_ROWS,
        "n_cols": SLICE_COLS,
        "n_selected": SLICE_SELECT,
        "selectivity": SLICE_SELECT / SLICE_ROWS,
        "selection_matrix_secs": selection_secs,
        "direct_gather_secs": direct_secs,
        "row_slice_speedup": speedup,
    }
    _RECORDS.append(record)
    bench_json("kernels", **_smoke_fields(record))
    print(
        f"row_slice ({SLICE_SELECT}/{SLICE_ROWS} rows) selection "
        f"{selection_secs * 1e3:8.2f} ms -> gather {direct_secs * 1e3:8.2f} ms  "
        f"({speedup:.1f}x)"
    )
    assert speedup >= ROW_SLICE_SPEEDUP_FLOOR, (
        f"direct row gather only {speedup:.1f}x the selection-matrix path "
        f"(floor {ROW_SLICE_SPEEDUP_FLOOR}x)"
    )


def test_mmap_full_shard_decode_no_regression(bench_json, tmp_path_factory):
    rng = np.random.default_rng(11)
    features = np.round(rng.random((6_000, 40)) * (rng.random((6_000, 40)) < 0.4), 1)
    labels = rng.integers(0, 2, size=6_000).astype(np.float64)
    dataset = Dataset.create(
        tmp_path_factory.mktemp("mmap-bench") / "shards",
        features,
        labels,
        scheme="TOC",
        batch_size=1_500,
        shuffle=False,
        executor="serial",
    )
    sharded = dataset.sharded

    def decode_all():
        return [sharded.decode(s.batch_id).to_dense() for s in sharded.shards]

    env_before = os.environ.get(mmapio.ENV_VAR)
    try:
        os.environ[mmapio.ENV_VAR] = "1"
        assert isinstance(sharded.read_payload(0), memoryview)
        mmap_secs = time_callable(decode_all, REPEATS)
        os.environ[mmapio.ENV_VAR] = "0"
        assert isinstance(sharded.read_payload(0), bytes)
        bytes_secs = time_callable(decode_all, REPEATS)
    finally:
        if env_before is None:
            os.environ.pop(mmapio.ENV_VAR, None)
        else:
            os.environ[mmapio.ENV_VAR] = env_before

    ratio = mmap_secs / bytes_secs
    record = {
        "bench": "kernels",
        "op": "mmap_full_decode",
        "n_shards": len(sharded.shards),
        "payload_bytes": sharded.total_payload_bytes(),
        "mmap_decode_secs": mmap_secs,
        "copy_decode_secs": bytes_secs,
        # Direction-neutral on purpose: ~1.0 plus CI jitter, so a 20%
        # cross-run delta means nothing; the ceiling assert below gates it.
        "mmap_relative_cost": ratio,
    }
    _RECORDS.append(record)
    bench_json("kernels", **_smoke_fields(record))
    print(
        f"full-shard decode mmap {mmap_secs * 1e3:8.2f} ms vs bytes "
        f"{bytes_secs * 1e3:8.2f} ms  (ratio {ratio:.2f})"
    )
    assert ratio <= MMAP_REGRESSION_CEILING, (
        f"mmap full-shard decode regressed {ratio:.2f}x vs copying reads "
        f"(ceiling {MMAP_REGRESSION_CEILING}x)"
    )


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    raise SystemExit(pytest.main([__file__, "-q", "--benchmark-disable"]))
