"""Figure 2 — optimisation efficiency of BGD, SGD, and MGD.

Timed kernel: one epoch of each gradient-descent variant.  The accuracy-vs-
epoch series (the actual Figure 2 curves) is printed at the end.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_fig2
from repro.bench.reporting import format_series
from repro.bench.workloads import labeled_dataset
from repro.ml.reference import gradient_descent_spectrum

N_ROWS = 1000

VARIANTS = {
    "SGD": 1,
    "MGD-250": 250,
    "MGD-50pct": N_ROWS // 2,
    "BGD": N_ROWS,
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_one_epoch(benchmark, variant):
    features, labels = labeled_dataset("mnist", N_ROWS, seed=0)
    batch_size = VARIANTS[variant]
    benchmark(
        gradient_descent_spectrum, features, labels, batch_size=batch_size, epochs=1, seed=0
    )


def test_report_figure2(benchmark, capsys):
    result = benchmark.pedantic(
        run_fig2, kwargs=dict(n_rows=N_ROWS, epochs=15), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_series(
                "Figure 2 — optimisation efficiency (accuracy per epoch)",
                "epoch",
                result["epochs"],
                result["curves"],
            )
        )
        print()
    curves = result["curves"]
    # The Figure 2 shape: per epoch, MGD reaches at least BGD's accuracy
    # (it takes many more update steps per epoch).
    assert curves["MGD (250 rows)"][-1] >= curves["BGD"][-1] - 0.02
